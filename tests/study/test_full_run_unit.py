"""Unit tests for the full_run CLI plumbing (the heavy path is benched)."""

from __future__ import annotations

from repro.study import full_run


class TestArgumentHandling:
    def test_codes_parsing_empty_means_all(self, monkeypatch, tmp_path):
        captured = {}

        def fake_run_study(config, out_path, codes=None, **runtime_kwargs):
            captured["config"] = config
            captured["codes"] = codes
            captured["runtime_kwargs"] = runtime_kwargs
            return {}

        monkeypatch.setattr(full_run, "run_study", fake_run_study)
        full_run.main(["--profile", "smoke", "--out", str(tmp_path / "r.json")])
        assert captured["codes"] is None
        assert captured["config"].name == "smoke"
        # Runtime knobs default to unset so env/config resolution applies.
        assert captured["runtime_kwargs"]["workers"] is None
        assert captured["runtime_kwargs"]["use_cache"] is None

    def test_codes_parsing_subset(self, monkeypatch, tmp_path):
        captured = {}

        def fake_run_study(config, out_path, codes=None, **runtime_kwargs):
            captured["codes"] = codes
            return {}

        monkeypatch.setattr(full_run, "run_study", fake_run_study)
        full_run.main(
            ["--profile", "smoke", "--codes", "ABT,BEER", "--out", str(tmp_path / "r.json")]
        )
        assert captured["codes"] == ("ABT", "BEER")

    def test_reliability_flags_forwarded(self, monkeypatch, tmp_path):
        captured = {}

        def fake_run_study(config, out_path, codes=None, **runtime_kwargs):
            captured.update(runtime_kwargs)
            return {}

        monkeypatch.setattr(full_run, "run_study", fake_run_study)
        full_run.main([
            "--profile", "smoke", "--out", str(tmp_path / "r.json"),
            "--retries", "3", "--faults", "transient=0.2,seed=3", "--fail-fast",
        ])
        assert captured["retries"] == 3
        assert captured["faults"] == "transient=0.2,seed=3"
        assert captured["fail_fast"] is True

    def test_reliability_flags_default_unset(self, monkeypatch, tmp_path):
        captured = {}

        def fake_run_study(config, out_path, codes=None, **runtime_kwargs):
            captured.update(runtime_kwargs)
            return {}

        monkeypatch.setattr(full_run, "run_study", fake_run_study)
        full_run.main(["--profile", "smoke", "--out", str(tmp_path / "r.json")])
        assert captured["retries"] is None
        assert captured["faults"] is None
        assert captured["fail_fast"] is None

"""Tests for records, relations and fingerprints."""

from __future__ import annotations

import pytest

from repro.data.record import AttributeKind, Record, Relation
from repro.errors import SchemaMismatchError


class TestRecord:
    def test_basic_construction(self):
        r = Record("r1", ("sony", "99.99"), "e1", source="left")
        assert r.n_attributes == 2

    def test_non_string_values_raise(self):
        with pytest.raises(SchemaMismatchError):
            Record("r1", ("sony", 99.99), "e1")  # type: ignore[arg-type]

    def test_fingerprint_normalises_whitespace_and_case(self):
        a = Record("a", ("Sony  MDR", "99"), "e1")
        b = Record("b", ("sony mdr", "99"), "e1")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_order_invariant(self):
        a = Record("a", ("alpha", "beta"), "e1")
        b = Record("b", ("beta", "alpha"), "e1")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_content(self):
        a = Record("a", ("alpha",), "e1")
        b = Record("b", ("gamma",), "e1")
        assert a.fingerprint() != b.fingerprint()


class TestRelation:
    def test_add_and_iterate(self):
        rel = Relation("left", 2, (AttributeKind.NAME, AttributeKind.NUMERIC))
        rel.add(Record("r1", ("a", "1"), "e1"))
        assert len(rel) == 1
        assert next(iter(rel)).record_id == "r1"

    def test_wrong_arity_record_raises(self):
        rel = Relation("left", 2, (AttributeKind.NAME, AttributeKind.NUMERIC))
        with pytest.raises(SchemaMismatchError):
            rel.add(Record("r1", ("a",), "e1"))

    def test_kind_count_mismatch_raises(self):
        with pytest.raises(SchemaMismatchError):
            Relation("left", 2, (AttributeKind.NAME,))

"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DATASET_CODES, build_dataset, get_spec
from repro.data.generators import build_all_datasets
from repro.errors import DatasetError


@pytest.mark.parametrize("code", DATASET_CODES)
class TestPerDataset:
    def test_scaled_counts(self, code):
        spec = get_spec(code)
        dataset, _world = build_dataset(code, scale=0.1, seed=7)
        assert dataset.n_positives == max(4, round(spec.n_positives * 0.1))
        assert dataset.n_negatives == max(4, round(spec.n_negatives * 0.1))

    def test_arity_matches_spec(self, code):
        dataset, _world = build_dataset(code, scale=0.05, seed=7)
        spec = get_spec(code)
        for pair in dataset.pairs:
            assert pair.n_attributes == spec.n_attributes

    def test_labels_consistent_with_entity_ids(self, code):
        dataset, _world = build_dataset(code, scale=0.05, seed=7)
        for pair in dataset.pairs:
            same = pair.left.entity_id == pair.right.entity_id
            assert same == (pair.label == 1), pair.pair_id

    def test_world_registers_all_records(self, code):
        dataset, world = build_dataset(code, scale=0.05, seed=7)
        for pair in dataset.pairs:
            assert pair.left.fingerprint() in world
            assert pair.right.fingerprint() in world

    def test_deterministic(self, code):
        build_dataset.cache_clear()
        a, _ = build_dataset(code, scale=0.05, seed=3)
        build_dataset.cache_clear()
        b, _ = build_dataset(code, scale=0.05, seed=3)
        assert [p.pair_id for p in a] == [p.pair_id for p in b]
        assert [p.left.values for p in a] == [p.left.values for p in b]

    def test_seed_changes_content(self, code):
        a, _ = build_dataset(code, scale=0.05, seed=1)
        b, _ = build_dataset(code, scale=0.05, seed=2)
        assert [p.left.values for p in a] != [p.left.values for p in b]

    def test_values_are_strings(self, code):
        dataset, _world = build_dataset(code, scale=0.05, seed=7)
        for pair in dataset.pairs[:50]:
            assert all(isinstance(v, str) for v in pair.left.values)
            assert all(isinstance(v, str) for v in pair.right.values)

    def test_hard_negatives_present(self, code):
        dataset, _world = build_dataset(code, scale=0.1, seed=7)
        hard = [p for p in dataset.pairs if p.label == 0 and p.hardness > 0.6]
        assert hard, "every benchmark needs confusable negatives"


class TestGlobalProperties:
    def test_invalid_scale_raises(self):
        with pytest.raises(DatasetError):
            build_dataset("ABT", scale=0.0, seed=7)

    def test_build_all_merges_worlds(self):
        datasets, world = build_all_datasets(scale=0.05, seed=7)
        assert set(datasets) == set(DATASET_CODES)
        total_records = sum(
            len({p.left.fingerprint() for p in ds} | {p.right.fingerprint() for p in ds})
            for ds in datasets.values()
        )
        # The merged world holds (nearly) every distinct fingerprint.
        assert len(world) >= 0.95 * total_records

    def test_positive_hardness_spread(self):
        dataset, _world = build_dataset("ABT", scale=0.2, seed=7)
        hardness = np.array([p.hardness for p in dataset.pairs if p.label == 1])
        assert hardness.std() > 0.05

    def test_free_text_datasets_have_long_values(self):
        abt, _ = build_dataset("ABT", scale=0.05, seed=7)
        dbac, _ = build_dataset("DBAC", scale=0.05, seed=7)

        def mean_len(ds):
            return np.mean([len(" ".join(p.right.values).split()) for p in ds.pairs])

        assert mean_len(abt) > mean_len(dbac)

"""Tests for serialisation under the cross-dataset restrictions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.record import Record
from repro.data.serialize import (
    PAIR_SEPARATOR,
    column_order,
    deserialize_values,
    fingerprint_serialized,
    serialize_pair,
    serialize_record,
)
from repro.errors import SerializationError

from ..conftest import make_pair


class TestColumnOrder:
    def test_none_seed_keeps_natural_order(self):
        assert column_order(4, None) == (0, 1, 2, 3)

    def test_seeded_is_permutation(self):
        order = column_order(6, seed=3)
        assert sorted(order) == list(range(6))

    def test_seeded_is_deterministic(self):
        assert column_order(5, 42) == column_order(5, 42)

    def test_different_seeds_vary(self):
        orders = {column_order(6, s) for s in range(10)}
        assert len(orders) > 1

    def test_zero_attributes_raise(self):
        with pytest.raises(SerializationError):
            column_order(0, None)


class TestSerializeRecord:
    def test_no_column_names_leak(self):
        record = Record("r", ("sony mdr", "99.99"), "e1")
        text = serialize_record(record)
        assert text == "val sony mdr val 99.99"

    def test_empty_value_keeps_slot(self):
        record = Record("r", ("sony", "", "99"), "e1")
        values = deserialize_values(serialize_record(record))
        assert values == ["sony", "", "99"]

    def test_custom_order_applied(self):
        record = Record("r", ("a", "b"), "e1")
        assert serialize_record(record, (1, 0)) == "val b val a"

    def test_invalid_order_raises(self):
        record = Record("r", ("a", "b"), "e1")
        with pytest.raises(SerializationError):
            serialize_record(record, (0, 0))

    def test_whitespace_normalised(self):
        record = Record("r", ("a   b\tc",), "e1")
        assert serialize_record(record) == "val a b c"


class TestSerializePair:
    def test_contains_separator(self):
        pair = make_pair(("a", "b"), ("c", "d"), 1)
        assert PAIR_SEPARATOR in serialize_pair(pair)

    def test_both_sides_same_permutation(self):
        pair = make_pair(("a1", "a2", "a3"), ("b1", "b2", "b3"), 1)
        text = serialize_pair(pair, seed=11)
        left, right = text.split(PAIR_SEPARATOR)
        left_idx = [left.split().index(f"a{i}") for i in (1, 2, 3)]
        right_idx = [right.split().index(f"b{i}") for i in (1, 2, 3)]
        assert left_idx == right_idx


class TestDeserialize:
    def test_roundtrip(self):
        record = Record("r", ("sony mdr v6", "great headphones", "99.99"), "e1")
        values = deserialize_values(serialize_record(record))
        assert values == ["sony mdr v6", "great headphones", "99.99"]

    def test_not_serialised_raises(self):
        with pytest.raises(SerializationError):
            deserialize_values("just plain text")

    def test_fingerprint_matches_record_under_any_order(self):
        record = Record("r", ("Alpha Beta", "gamma", "42"), "e1")
        for seed in (None, 0, 1, 2):
            text = serialize_record(record, column_order(3, seed))
            assert fingerprint_serialized(text) == record.fingerprint()

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(codec="ascii", categories=["L", "N"]),
                min_size=1, max_size=8,
            ),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=50)
    def test_fingerprint_roundtrip_property(self, values):
        record = Record("r", tuple(values), "e1")
        text = serialize_record(record)
        assert fingerprint_serialized(text) == record.fingerprint()

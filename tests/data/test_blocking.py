"""Tests for the token-overlap blocker."""

from __future__ import annotations

import pytest

from repro.data import build_dataset
from repro.data.blocking import TokenBlocker
from repro.data.record import Record
from repro.errors import DatasetError


def _records(texts: list[str], prefix: str) -> list[Record]:
    return [Record(f"{prefix}{i}", (t,), f"e-{prefix}{i}") for i, t in enumerate(texts)]


class TestTokenBlocker:
    def test_shared_tokens_become_candidates(self):
        left = _records(["sony mdr headphones", "canon eos camera"], "l")
        right = _records(["sony mdr v2", "nikon lens kit"], "r")
        result = TokenBlocker(min_shared=2).block(left, right)
        ids = {(a.record_id, b.record_id) for a, b in result.candidates}
        assert ("l0", "r0") in ids
        assert ("l1", "r1") not in ids

    def test_min_shared_threshold(self):
        left = _records(["alpha beta"], "l")
        right = _records(["alpha gamma"], "r")
        assert len(TokenBlocker(min_shared=1).block(left, right).candidates) == 1
        assert len(TokenBlocker(min_shared=2).block(left, right).candidates) == 0

    def test_stopword_tokens_ignored(self):
        # 'common' appears in every right record -> above max_df -> ignored.
        left = _records(["common alpha"], "l")
        right = _records([f"common token{i}" for i in range(10)], "r")
        result = TokenBlocker(min_shared=1, max_df=0.5).block(left, right)
        assert len(result.candidates) == 0

    def test_reduction_ratio(self):
        left = _records(["a b", "c d"], "l")
        right = _records(["a b", "e f"], "r")
        result = TokenBlocker(min_shared=2).block(left, right)
        assert result.reduction_ratio == pytest.approx(1 - 1 / 4)

    def test_pair_completeness_on_benchmark(self):
        dataset, _world = build_dataset("DBAC", scale=0.05, seed=7)
        left = [p.left for p in dataset.pairs]
        right = [p.right for p in dataset.pairs]
        truth = {(p.left.record_id, p.right.record_id) for p in dataset.pairs if p.label == 1}
        result = TokenBlocker(min_shared=2).block(left, right)
        assert result.pair_completeness(truth) > 0.8
        assert result.reduction_ratio > 0.5

    def test_empty_relations_raise(self):
        with pytest.raises(DatasetError):
            TokenBlocker().block([], _records(["a"], "r"))

    def test_invalid_params_raise(self):
        with pytest.raises(DatasetError):
            TokenBlocker(min_shared=0)
        with pytest.raises(DatasetError):
            TokenBlocker(max_df=0.0)

    def test_completeness_requires_truth(self):
        left = _records(["a b"], "l")
        right = _records(["a b"], "r")
        result = TokenBlocker(min_shared=1).block(left, right)
        with pytest.raises(DatasetError):
            result.pair_completeness(set())

"""Tests for the token-overlap blocker."""

from __future__ import annotations

import pytest

from repro.data import build_dataset
from repro.data.blocking import InvertedTokenIndex, TokenBlocker, record_tokens
from repro.data.record import Record
from repro.errors import DatasetError


def _records(texts: list[str], prefix: str) -> list[Record]:
    return [Record(f"{prefix}{i}", (t,), f"e-{prefix}{i}") for i, t in enumerate(texts)]


class TestInvertedTokenIndex:
    def test_incremental_add_updates_postings(self):
        index = InvertedTokenIndex()
        assert index.add(Record("r0", ("alpha beta",), "e0")) == 0
        assert index.add(Record("r1", ("alpha gamma",), "e1")) == 1
        assert len(index) == 2
        assert index.document_frequency("alpha") == 2
        assert index.postings("beta") == (0,)
        assert index.postings("missing") == ()

    def test_shared_counts_skips_stop_tokens(self):
        index = InvertedTokenIndex()
        index.add_many(
            Record(f"r{i}", (f"common word{i}",), f"e{i}") for i in range(4)
        )
        counts = index.shared_counts(("common", "word1"), stop_df=2.0)
        assert counts == {1: 1}  # 'common' (df=4) ignored, 'word1' kept

    def test_record_tokens_deduplicates_in_order(self):
        record = Record("r", ("alpha beta", "beta gamma alpha"), "e")
        assert record_tokens(record) == ("alpha", "beta", "gamma")


class TestTokenBlocker:
    def test_shared_tokens_become_candidates(self):
        left = _records(["sony mdr headphones", "canon eos camera"], "l")
        right = _records(["sony mdr v2", "nikon lens kit"], "r")
        result = TokenBlocker(min_shared=2).block(left, right)
        ids = {(a.record_id, b.record_id) for a, b in result.candidates}
        assert ("l0", "r0") in ids
        assert ("l1", "r1") not in ids

    def test_min_shared_threshold(self):
        left = _records(["alpha beta"], "l")
        right = _records(["alpha gamma"], "r")
        assert len(TokenBlocker(min_shared=1).block(left, right).candidates) == 1
        assert len(TokenBlocker(min_shared=2).block(left, right).candidates) == 0

    def test_stopword_tokens_ignored(self):
        # 'common' appears in every right record -> above max_df -> ignored.
        left = _records(["common alpha"], "l")
        right = _records([f"common token{i}" for i in range(10)], "r")
        result = TokenBlocker(min_shared=1, max_df=0.5).block(left, right)
        assert len(result.candidates) == 0

    def test_reduction_ratio(self):
        left = _records(["a b", "c d"], "l")
        right = _records(["a b", "e f"], "r")
        result = TokenBlocker(min_shared=2).block(left, right)
        assert result.reduction_ratio == pytest.approx(1 - 1 / 4)

    def test_pair_completeness_on_benchmark(self):
        dataset, _world = build_dataset("DBAC", scale=0.05, seed=7)
        left = [p.left for p in dataset.pairs]
        right = [p.right for p in dataset.pairs]
        truth = {(p.left.record_id, p.right.record_id) for p in dataset.pairs if p.label == 1}
        result = TokenBlocker(min_shared=2).block(left, right)
        assert result.pair_completeness(truth) > 0.8
        assert result.reduction_ratio > 0.5

    def test_empty_relations_raise(self):
        with pytest.raises(DatasetError):
            TokenBlocker().block([], _records(["a"], "r"))

    def test_invalid_params_raise(self):
        with pytest.raises(DatasetError):
            TokenBlocker(min_shared=0)
        with pytest.raises(DatasetError):
            TokenBlocker(max_df=0.0)

    def test_index_backed_blocker_matches_brute_force(self):
        """The inverted-index pass equals the O(n^2) definition on a seeded world."""
        dataset, _world = build_dataset("BEER", scale=0.05, seed=11)
        left = [p.left for p in dataset.pairs]
        right = [p.right for p in dataset.pairs]
        min_shared, max_df = 2, 0.2

        # Brute-force reference: count shared non-stop tokens pairwise.
        stop_df = max(2.0, max_df * len(right))
        df: dict[str, int] = {}
        for record in right:
            for token in record_tokens(record):
                df[token] = df.get(token, 0) + 1
        reference = set()
        for a in left:
            a_tokens = [t for t in record_tokens(a) if df.get(t, 0) <= stop_df]
            for b in right:
                b_tokens = set(record_tokens(b))
                if sum(1 for t in a_tokens if t in b_tokens) >= min_shared:
                    reference.add((a.record_id, b.record_id))

        result = TokenBlocker(min_shared=min_shared, max_df=max_df).block(left, right)
        got = {(a.record_id, b.record_id) for a, b in result.candidates}
        assert got == reference
        assert reference  # the seeded world produced candidates

    def test_completeness_requires_truth(self):
        left = _records(["a b"], "l")
        right = _records(["a b"], "r")
        result = TokenBlocker(min_shared=1).block(left, right)
        with pytest.raises(DatasetError):
            result.pair_completeness(set())

"""Tests for the entity world."""

from __future__ import annotations

import pytest

from repro.data.record import Record
from repro.data.world import EntityWorld
from repro.errors import DatasetError


@pytest.fixture
def world() -> EntityWorld:
    w = EntityWorld()
    w.register(Record("a", ("sony mdr",), "ABT:e1"))
    w.register(Record("b", ("sony mdr v2",), "ABT:e1"))
    w.register(Record("c", ("canon eos",), "ABT:e2"))
    return w


class TestEntityWorld:
    def test_same_entity(self, world):
        a = Record("a", ("sony mdr",), "ABT:e1").fingerprint()
        b = Record("b", ("sony mdr v2",), "ABT:e1").fingerprint()
        c = Record("c", ("canon eos",), "ABT:e2").fingerprint()
        assert world.same_entity(a, b) is True
        assert world.same_entity(a, c) is False

    def test_unknown_returns_none(self, world):
        assert world.same_entity("nope", "also nope") is None

    def test_collision_keeps_first(self):
        w = EntityWorld()
        w.register(Record("a", ("same text",), "X:e1"))
        w.register(Record("b", ("same text",), "X:e2"))
        assert w.entity_of(Record("a", ("same text",), "X:e1").fingerprint()) == "X:e1"

    def test_hardness_roundtrip(self, world):
        left = Record("a", ("sony mdr",), "ABT:e1")
        right = Record("c", ("canon eos",), "ABT:e2")
        world.register_pair_hardness(left, right, 0.8)
        assert world.hardness(left.fingerprint(), right.fingerprint()) == 0.8
        # symmetric lookup
        assert world.hardness(right.fingerprint(), left.fingerprint()) == 0.8

    def test_hardness_default(self, world):
        assert world.hardness("x", "y", default=0.3) == 0.3

    def test_mean_hardness_by_class(self):
        w = EntityWorld()
        match_l = Record("a", ("x1",), "T:e1")
        match_r = Record("b", ("x2",), "T:e1")
        neg_l = Record("c", ("y1",), "T:e2")
        for r in (match_l, match_r, neg_l):
            w.register(r)
        w.register_pair_hardness(match_l, match_r, 0.9)
        w.register_pair_hardness(match_l, neg_l, 0.1)
        assert w.mean_hardness("T", is_match=True) == pytest.approx(0.9)
        assert w.mean_hardness("T", is_match=False) == pytest.approx(0.1)

    def test_mean_hardness_default_when_empty(self):
        assert EntityWorld().mean_hardness("T", True, default=0.42) == 0.42

    def test_merge(self, world):
        other = EntityWorld()
        other.register(Record("d", ("nikon",), "WDC:e9"))
        merged = world.merge(other)
        assert len(merged) == len(world) + 1

    def test_require_raises_for_unknown(self, world):
        with pytest.raises(DatasetError):
            world.require("unknown-fingerprint")

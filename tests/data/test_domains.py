"""Direct tests of the per-domain generators' source asymmetries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset
from repro.data.generators.perturb import Perturber


@pytest.fixture
def perturber():
    return Perturber(np.random.default_rng(0))


class TestPerturber:
    def test_typo_changes_word(self, perturber):
        results = {perturber.typo("keyboard") for _ in range(20)}
        assert any(r != "keyboard" for r in results)

    def test_typo_short_words_untouched(self, perturber):
        assert perturber.typo("ab") == "ab"

    def test_abbreviate_truncates(self, perturber):
        short = perturber.abbreviate("corporation")
        assert 3 <= len(short) <= 5
        assert "corporation".startswith(short)

    def test_corrupt_text_protects_digit_tokens(self, perturber):
        """SKU-style tokens survive corruption far more often than words."""
        survived_sku = survived_word = 0
        for _ in range(300):
            out = perturber.corrupt_text("wireless mdr7506x headphones", 1.0)
            survived_sku += "mdr7506x" in out
            survived_word += "wireless" in out
        assert survived_sku > survived_word

    def test_corrupt_never_empty(self, perturber):
        assert perturber.corrupt_text("word", 1.0)

    def test_reformat_phone_keeps_digits(self, perturber):
        phone = perturber.phone()
        digits = [c for c in phone if c.isdigit()]
        for _ in range(10):
            reformatted = perturber.reformat_phone(phone)
            assert [c for c in reformatted if c.isdigit()] == digits

    def test_jitter_bounded(self, perturber):
        for _ in range(50):
            jittered = perturber.jitter_number(100.0, rel=0.1)
            assert 90.0 <= jittered <= 110.0

    def test_maybe_missing_probabilistic(self, perturber):
        outcomes = {perturber.maybe_missing("x", 1.0) for _ in range(100)}
        assert outcomes == {"", "x"}


def _views(code: str):
    dataset, _world = build_dataset(code, scale=0.1, seed=7)
    matches = [p for p in dataset.pairs if p.label == 1]
    return matches


class TestSourceAsymmetries:
    def test_web_product_right_side_verbose(self):
        matches = _views("ABT")
        left_len = np.mean([len(" ".join(p.left.values).split()) for p in matches])
        right_len = np.mean([len(" ".join(p.right.values).split()) for p in matches])
        assert right_len > 1.5 * left_len

    def test_citation_right_side_long_venue(self):
        matches = _views("DBAC")
        rights = " ".join(" ".join(p.right.values) for p in matches)
        assert "proceedings" in rights or "transactions" in rights

    def test_citation_right_abbreviates_authors(self):
        matches = _views("DBAC")
        rights = " ".join(p.right.values[1] for p in matches)
        assert ". " in rights  # "j. smith" style initials

    def test_dbgo_right_side_loses_venues(self):
        matches = _views("DBGO")
        missing = sum(1 for p in matches if p.right.values[2] == "")
        assert missing > len(matches) * 0.2

    def test_movie_duration_formats_differ(self):
        matches = _views("ROIM")
        lefts = " ".join(p.left.values[4] for p in matches)
        rights = " ".join(p.right.values[4] for p in matches)
        assert "min" in lefts
        assert "h " in rights

    def test_music_track_length_formats_differ(self):
        matches = _views("ITAM")
        lefts = " ".join(p.left.values[6] for p in matches)
        assert ":" in lefts  # iTunes mm:ss
        rights = [p.right.values[6] for p in matches]
        assert all(":" not in r for r in rights)  # Amazon raw seconds

    def test_beer_abv_formats_differ(self):
        matches = _views("BEER")
        rights = [p.right.values[3] for p in matches]
        assert any(r.endswith("%") for r in rights)

    def test_restaurant_phone_formats_vary(self):
        matches = _views("FOZA")
        formats = {p.right.values[3].count("-") for p in matches if p.right.values[3]}
        assert len(formats) > 1

    def test_software_right_often_lacks_vendor(self):
        matches = _views("AMGO")
        missing = sum(1 for p in matches if p.right.values[1] == "")
        assert missing > len(matches) * 0.3

"""A user-defined domain generator plugs into the synthesis pipeline."""

from __future__ import annotations

import dataclasses

import pytest

from repro.data.generators import synthesize
from repro.data.generators.base import DomainGenerator, EntityProto
from repro.data.record import AttributeKind
from repro.data.registry import get_spec


class _BookGenerator(DomainGenerator):
    """Minimal custom domain: books with title and ISBN-ish id."""

    def make_entity(self, code, idx, perturber):
        title = f"{perturber.choice(('red', 'blue', 'green'))} book {idx}"
        return EntityProto(f"{code}:e{idx}", (title, f"isbn{idx:05d}"), group_key="books")

    def make_sibling(self, entity, code, idx, perturber):
        title, _isbn = entity.canonical
        return EntityProto(f"{code}:e{idx}", (f"{title} vol ii", f"isbn{idx:05d}"),
                           group_key=entity.group_key)


@pytest.fixture(scope="module")
def book_spec():
    # Borrow a registered spec's shape and repoint it at a 2-attribute book schema.
    base = get_spec("BEER")
    return dataclasses.replace(
        base,
        code="BOOK",
        full_name="Books",
        domain="books",
        n_attributes=2,
        n_positives=20,
        n_negatives=60,
        attribute_kinds=(AttributeKind.NAME, AttributeKind.NAME),
        generator="custom",
    )


class TestCustomGenerator:
    def test_synthesize_accepts_custom_generator(self, book_spec):
        dataset, world = synthesize(book_spec, _BookGenerator(), scale=1.0, seed=3)
        assert dataset.n_positives == 20
        assert dataset.n_negatives == 60
        assert len(world) > 0

    def test_labels_align_with_entities(self, book_spec):
        dataset, _world = synthesize(book_spec, _BookGenerator(), scale=1.0, seed=3)
        for pair in dataset.pairs:
            assert (pair.left.entity_id == pair.right.entity_id) == (pair.label == 1)

    def test_matchable_by_library_matchers(self, book_spec):
        from repro.eval.metrics import f1_score
        from repro.matchers import StringSimMatcher

        dataset, _world = synthesize(book_spec, _BookGenerator(), scale=1.0, seed=3)
        predictions = StringSimMatcher().predict(dataset.pairs, serialization_seed=0)
        # The custom domain flows through serialisation and matching; the
        # trivial baseline beats the all-no answer (sibling volumes with
        # near-identical titles cap its precision by construction).
        assert f1_score(dataset.labels(), predictions) > 25.0

"""Tests for CSV ingestion."""

from __future__ import annotations

import pytest

from repro.data.io import read_labelled_pairs_csv, read_relation_csv
from repro.errors import DatasetError


@pytest.fixture
def relation_files(tmp_path):
    left = tmp_path / "left.csv"
    left.write_text(
        "id,title,price\n"
        "a1,sony mdr headphones,99.99\n"
        "a2,canon eos camera,450\n"
    )
    right = tmp_path / "right.csv"
    right.write_text(
        "id,name,cost\n"
        "b1,sony mdr wireless,94\n"
        "b2,nikon lens,120\n"
    )
    pairs = tmp_path / "pairs.csv"
    pairs.write_text("left,right,label\na1,b1,1\na2,b2,0\n")
    return left, right, pairs


class TestReadRelation:
    def test_basic(self, relation_files):
        left, _right, _pairs = relation_files
        records = read_relation_csv(left)
        assert len(records) == 2
        assert records[0].record_id == "a1"
        assert records[0].values == ("sony mdr headphones", "99.99")

    def test_headers_discarded(self, relation_files):
        """Restriction 2: no column-name information survives ingestion."""
        left, _right, _pairs = relation_files
        records = read_relation_csv(left)
        for record in records:
            assert "title" not in record.values
            assert "price" not in record.values

    def test_no_header_mode(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("x1,alpha\nx2,beta\n")
        records = read_relation_csv(path, has_header=False)
        assert len(records) == 2

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,a,b\nr1,1,2\nr2,only-one\n")
        with pytest.raises(DatasetError):
            read_relation_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("id,a\n")
        with pytest.raises(DatasetError):
            read_relation_csv(path)

    def test_empty_id_raises(self, tmp_path):
        path = tmp_path / "noid.csv"
        path.write_text("id,a\n,x\n")
        with pytest.raises(DatasetError):
            read_relation_csv(path)


class TestReadPairs:
    def test_dataset_built(self, relation_files):
        left_path, right_path, pairs_path = relation_files
        left = read_relation_csv(left_path)
        right = read_relation_csv(right_path)
        dataset = read_labelled_pairs_csv(pairs_path, left, right, name="shops")
        assert len(dataset) == 2
        assert dataset.n_positives == 1
        assert dataset.pairs[0].left.record_id == "a1"

    def test_unknown_id_raises(self, relation_files, tmp_path):
        left_path, right_path, _ = relation_files
        left = read_relation_csv(left_path)
        right = read_relation_csv(right_path)
        bad = tmp_path / "badpairs.csv"
        bad.write_text("l,r,label\nmissing,b1,1\n")
        with pytest.raises(DatasetError):
            read_labelled_pairs_csv(bad, left, right)

    def test_bad_label_raises(self, relation_files, tmp_path):
        left_path, right_path, _ = relation_files
        left = read_relation_csv(left_path)
        right = read_relation_csv(right_path)
        bad = tmp_path / "badlabel.csv"
        bad.write_text("l,r,label\na1,b1,maybe\n")
        with pytest.raises(DatasetError):
            read_labelled_pairs_csv(bad, left, right)

    def test_matchable_end_to_end(self, relation_files):
        from repro.matchers import StringSimMatcher

        left_path, right_path, pairs_path = relation_files
        left = read_relation_csv(left_path)
        right = read_relation_csv(right_path)
        dataset = read_labelled_pairs_csv(pairs_path, left, right)
        predictions = StringSimMatcher().predict(dataset.pairs)
        assert len(predictions) == 2

"""Tests for record pairs and EM datasets (splits, caps, skew)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import EMDataset, RecordPair
from repro.data.record import AttributeKind, Record
from repro.errors import DatasetError

from ..conftest import make_pair


def _dataset(n_pos: int, n_neg: int) -> EMDataset:
    pairs = []
    for i in range(n_pos):
        pairs.append(make_pair((f"match {i}", "x"), (f"match {i}", "y"), 1, f"p{i}"))
    for i in range(n_neg):
        pairs.append(make_pair((f"left {i}", "x"), (f"right {i}", "y"), 0, f"n{i}"))
    return EMDataset(
        name="T", domain="test", n_attributes=2,
        attribute_kinds=(AttributeKind.NAME, AttributeKind.TEXT),
        pairs=pairs,
    )


class TestRecordPair:
    def test_invalid_label_raises(self):
        with pytest.raises(DatasetError):
            make_pair(("a",), ("b",), label=2)

    def test_arity_mismatch_raises(self):
        left = Record("l", ("a", "b"), "e1")
        right = Record("r", ("c",), "e2")
        with pytest.raises(DatasetError):
            RecordPair("p", left, right, label=0)

    def test_invalid_hardness_raises(self):
        left = Record("l", ("a",), "e1")
        right = Record("r", ("b",), "e2")
        with pytest.raises(DatasetError):
            RecordPair("p", left, right, label=0, hardness=1.5)


class TestEMDataset:
    def test_counts_and_imbalance(self):
        ds = _dataset(10, 30)
        assert ds.n_positives == 10
        assert ds.n_negatives == 30
        assert ds.imbalance_rate == pytest.approx(0.75)

    def test_empty_imbalance_raises(self):
        ds = _dataset(1, 1)
        ds.pairs = []
        with pytest.raises(DatasetError):
            _ = ds.imbalance_rate

    def test_wrong_arity_pair_rejected(self):
        with pytest.raises(DatasetError):
            EMDataset(
                name="T", domain="test", n_attributes=3,
                attribute_kinds=(AttributeKind.NAME,) * 3,
                pairs=[make_pair(("a",), ("b",), 0)],
            )

    def test_labels_array(self):
        ds = _dataset(2, 3)
        labels = ds.labels()
        assert labels.sum() == 2
        assert labels.dtype == np.int64

    def test_shuffled_is_permutation(self):
        ds = _dataset(5, 5)
        shuffled = ds.shuffled(seed=1)
        assert {p.pair_id for p in shuffled} == {p.pair_id for p in ds}
        assert [p.pair_id for p in shuffled] != [p.pair_id for p in ds]

    def test_subsample_caps_size(self):
        ds = _dataset(20, 80)
        sub = ds.subsample(30, seed=0)
        assert len(sub) == 30

    def test_subsample_noop_when_small(self):
        ds = _dataset(3, 3)
        assert len(ds.subsample(100, seed=0)) == 6

    def test_subsample_deterministic(self):
        ds = _dataset(20, 80)
        ids_a = [p.pair_id for p in ds.subsample(30, seed=5)]
        ids_b = [p.pair_id for p in ds.subsample(30, seed=5)]
        assert ids_a == ids_b

    def test_subsample_keeps_both_labels(self):
        ds = _dataset(1, 200)
        sub = ds.subsample(10, seed=0)
        assert {p.label for p in sub} == {0, 1}

    def test_subsample_invalid_raises(self):
        with pytest.raises(DatasetError):
            _dataset(2, 2).subsample(0, seed=0)

    def test_split_stratified(self):
        ds = _dataset(20, 60)
        a, b = ds.split((0.5, 0.5), seed=0)
        assert a.n_positives == 10 and b.n_positives == 10
        assert a.n_negatives == 30 and b.n_negatives == 30

    def test_split_disjoint_and_complete(self):
        ds = _dataset(10, 10)
        a, b = ds.split((0.3, 0.7), seed=1)
        ids_a = {p.pair_id for p in a}
        ids_b = {p.pair_id for p in b}
        assert not ids_a & ids_b
        assert ids_a | ids_b == {p.pair_id for p in ds}

    def test_split_bad_fractions_raise(self):
        with pytest.raises(DatasetError):
            _dataset(2, 2).split((0.5, 0.6), seed=0)

    def test_to_relations_deduplicates(self):
        ds = _dataset(3, 3)
        # Duplicate one record across pairs.
        ds.pairs.append(ds.pairs[0])
        left, right = ds.to_relations()
        left_ids = [r.record_id for r in left]
        assert len(left_ids) == len(set(left_ids))
        assert left.n_attributes == ds.n_attributes

    def test_to_relations_cover_all_records(self):
        ds = _dataset(4, 4)
        left, right = ds.to_relations()
        ids = {r.record_id for r in left} | {r.record_id for r in right}
        expected = {p.left.record_id for p in ds} | {p.right.record_id for p in ds}
        assert ids == expected

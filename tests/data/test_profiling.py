"""Tests for the schema-less dataset profiler."""

from __future__ import annotations

import pytest

from repro.data import build_dataset, get_spec
from repro.data.profiling import infer_attribute_kinds, profile_records
from repro.data.record import AttributeKind, Record
from repro.errors import DatasetError


def _records(columns: list[list[str]]) -> list[Record]:
    n = len(columns[0])
    return [
        Record(f"r{i}", tuple(col[i] for col in columns), f"e{i}")
        for i in range(n)
    ]


class TestProfiles:
    def test_missing_rate(self):
        records = _records([["a", "", "b", ""]])
        profile = profile_records(records)[0]
        assert profile.missing_rate == pytest.approx(0.5)

    def test_distinct_rate(self):
        records = _records([["x", "x", "x", "y"]])
        assert profile_records(records)[0].distinct_rate == pytest.approx(0.5)

    def test_numeric_detection(self):
        records = _records([["99.99", "$12", "7", "1,200"]])
        profile = profile_records(records)[0]
        assert profile.inferred_kind is AttributeKind.NUMERIC

    def test_phone_detection(self):
        records = _records([["310-246-1501", "(212) 555-0100", "415/555-0123", "310 246 1501"]])
        assert profile_records(records)[0].inferred_kind is AttributeKind.PHONE

    def test_text_detection(self):
        long = "a very long marketing description with many tokens inside it indeed"
        records = _records([[long, long + " x", long + " y", long + " z"]])
        assert profile_records(records)[0].inferred_kind is AttributeKind.TEXT

    def test_category_detection(self):
        records = _records([["drama"] * 8 + ["comedy"] * 8])
        assert profile_records(records)[0].inferred_kind is AttributeKind.CATEGORY

    def test_identifier_heuristic(self):
        records = _records([[f"sku-{i}" for i in range(20)]])
        assert profile_records(records)[0].looks_like_identifier

    def test_validation(self):
        with pytest.raises(DatasetError):
            profile_records([])
        with pytest.raises(DatasetError):
            profile_records([Record("a", ("x",), "e"), Record("b", ("x", "y"), "e")])


class TestKindInference:
    @pytest.mark.parametrize("code", ["FOZA", "DBAC", "ROIM"])
    def test_recovers_most_registry_kinds(self, code):
        """On well-structured benchmarks, inference agrees with the
        registry for the majority of columns."""
        dataset, _world = build_dataset(code, scale=0.3, seed=7)
        left, _right = dataset.to_relations()
        inferred = infer_attribute_kinds(list(left))
        truth = get_spec(code).attribute_kinds
        agreement = sum(a == b for a, b in zip(inferred, truth)) / len(truth)
        assert agreement >= 0.5, (code, inferred, truth)

    def test_feeds_zeroer_end_to_end(self):
        """ZeroER over *inferred* kinds: the no-type-information workflow.

        Inference mistakes one column (address: NAME instead of TEXT) and
        ZeroER pays for it — a concrete demonstration of why the paper's
        Restriction 2 makes type-dependent matchers fragile.  The inferred
        pipeline must still work and clearly beat random matching.
        """
        from repro.eval.metrics import f1_score
        from repro.matchers import ZeroERMatcher

        dataset, _world = build_dataset("FOZA", scale=0.3, seed=7)
        left, _right = dataset.to_relations()
        inferred_kinds = infer_attribute_kinds(list(left))
        inferred_f1 = f1_score(
            dataset.labels(), ZeroERMatcher(inferred_kinds).predict(dataset.pairs)
        )
        registry_f1 = f1_score(
            dataset.labels(),
            ZeroERMatcher(get_spec("FOZA").attribute_kinds).predict(dataset.pairs),
        )
        assert inferred_f1 > 30.0
        assert registry_f1 >= inferred_f1  # true types can only help here

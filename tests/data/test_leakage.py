"""Tests for the data-leakage analyses (Section 5.1)."""

from __future__ import annotations

from repro.data import build_all_datasets
from repro.data.leakage import corpus_audit, pairwise_overlap_matrix, tuple_overlap


class TestTupleOverlap:
    def test_self_overlap_is_full(self, abt_dataset):
        report = tuple_overlap(abt_dataset, abt_dataset)
        assert not report.is_clean
        assert report.n_shared_tuples > 0

    def test_cross_dataset_zero_overlap(self):
        """The paper's guarantee: zero tuple overlap between every pair."""
        datasets, _world = build_all_datasets(scale=0.05, seed=7)
        reports = pairwise_overlap_matrix(datasets)
        assert len(reports) == 11 * 10 // 2
        assert all(r.is_clean for r in reports)


class TestCorpusAudit:
    def test_detects_known_source(self):
        hits = corpus_audit(
            ["https://sites.google.com/site/anhaidgroup/projects/data"],
            ["https://sites.google.com/site/anhaidgroup/projects/data/page1",
             "https://example.com/other"],
        )
        assert hits == ["https://sites.google.com/site/anhaidgroup/projects/data"]

    def test_clean_corpus_returns_empty(self):
        hits = corpus_audit(
            ["https://github.com/megagonlabs/ditto"],
            ["https://news.example.com", "https://blog.example.org"],
        )
        assert hits == []

    def test_deduplicates_hits(self):
        hits = corpus_audit(
            ["https://a.example"],
            ["https://a.example/1", "https://a.example/2"],
        )
        assert hits == ["https://a.example"]

"""Sanity checks on the generator word pools."""

from __future__ import annotations

import pytest

from repro.data.generators import vocabularies as V

_POOLS = {
    name: value
    for name, value in vars(V).items()
    if name.isupper() and isinstance(value, tuple)
}


class TestPools:
    def test_pools_exist(self):
        assert len(_POOLS) >= 20

    @pytest.mark.parametrize("name", sorted(_POOLS))
    def test_pool_nonempty_and_unique(self, name):
        pool = _POOLS[name]
        assert len(pool) >= 5, name
        assert len(set(pool)) == len(pool), f"{name} contains duplicates"

    @pytest.mark.parametrize("name", sorted(_POOLS))
    def test_pool_entries_lowercase_strings(self, name):
        for entry in _POOLS[name]:
            assert isinstance(entry, str)
            assert entry == entry.lower(), f"{name}: {entry!r} not lowercase"
            assert entry.strip() == entry

    def test_venue_long_forms_cover_all_venues(self):
        assert set(V.VENUES) <= set(V.VENUE_LONG)

    def test_domain_separation(self):
        """Identity pools of different domains barely overlap (cross-dataset
        disjointness depends on it)."""
        brands = set(V.BRANDS)
        breweries = {part for name in V.BREWERY_PARTS for part in name.split()}
        venues = set(V.VENUES)
        assert not brands & venues
        assert len(brands & breweries) <= 2

"""Tests for the Table-1 dataset registry."""

from __future__ import annotations

import pytest

from repro.data.registry import (
    DATASET_CODES,
    DATASETS,
    JELLYFISH_SEEN,
    get_spec,
    same_domain_codes,
)
from repro.errors import DatasetError


class TestRegistry:
    def test_eleven_datasets(self):
        assert len(DATASET_CODES) == 11
        assert set(DATASET_CODES) == set(DATASETS)

    @pytest.mark.parametrize(
        "code,n_attr,n_pos,n_neg",
        [
            ("ABT", 3, 1_028, 8_547),
            ("WDC", 3, 2_250, 7_992),
            ("DBAC", 4, 2_220, 10_143),
            ("DBGO", 4, 5_347, 23_360),
            ("FOZA", 6, 110, 836),
            ("ZOYE", 7, 90, 354),
            ("AMGO", 3, 1_167, 10_293),
            ("BEER", 4, 68, 382),
            ("ITAM", 8, 132, 407),
            ("ROIM", 5, 190, 410),
            ("WAAM", 5, 962, 9_280),
        ],
    )
    def test_table1_statistics(self, code, n_attr, n_pos, n_neg):
        spec = get_spec(code)
        assert spec.n_attributes == n_attr
        assert spec.n_positives == n_pos
        assert spec.n_negatives == n_neg

    def test_unknown_code_raises(self):
        with pytest.raises(DatasetError):
            get_spec("NOPE")

    def test_imbalance_rate(self):
        assert get_spec("ABT").imbalance_rate == pytest.approx(8547 / 9575)

    def test_kind_layout_matches_arity(self):
        for spec in DATASETS.values():
            assert len(spec.attribute_kinds) == spec.n_attributes

    def test_jellyfish_seen_is_six(self):
        assert len(JELLYFISH_SEEN) == 6
        assert JELLYFISH_SEEN <= set(DATASET_CODES)


class TestDomains:
    def test_same_domain_pairs(self):
        assert same_domain_codes("ABT") == ("WDC",)
        assert same_domain_codes("DBGO") == ("DBAC",)
        assert same_domain_codes("FOZA") == ("ZOYE",)

    def test_unique_domains(self):
        for code in ("AMGO", "BEER", "ITAM", "ROIM", "WAAM"):
            assert same_domain_codes(code) == ()

    def test_exactly_six_share_a_domain(self):
        shared = [c for c in DATASET_CODES if same_domain_codes(c)]
        assert len(shared) == 6

"""Tests for the metrics registry: series semantics, merge, rendering."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.runtime.executor import make_executor


class FakeClock:
    """A monotonically advancing manual clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def monotonic(self) -> float:
        return self.now


class TestCounters:
    def test_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", 1, model="a")
        reg.counter("requests_total", 2, model="a")
        reg.counter("requests_total", 5, model="b")
        snap = reg.snapshot()
        values = {tuple(c["labels"].items()): c["value"] for c in snap["counters"]}
        assert values[(("model", "a"),)] == 3
        assert values[(("model", "b"),)] == 5

    def test_name_is_a_legal_label_key(self):
        # Registry methods take their metric name positionally-only, so a
        # label literally called ``name`` (the span-feed convention) works.
        reg = MetricsRegistry()
        reg.counter("spans_total", 1, name="grid.cell", status="ok")
        [counter] = reg.snapshot()["counters"]
        assert counter["labels"] == {"name": "grid.cell", "status": "ok"}


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("workers", 4)
        reg.gauge("workers", 8)
        [gauge] = reg.snapshot()["gauges"]
        assert gauge["value"] == 8


class TestHistograms:
    def test_bucket_boundaries_are_inclusive_upper(self):
        reg = MetricsRegistry()
        buckets = (1.0, 2.0, 4.0)
        # Exactly-on-boundary observations land in that bucket (`le`
        # semantics); anything beyond the last bound is overflow.
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 4.0001, 100.0):
            reg.histogram("lat", value, buckets=buckets)
        [hist] = reg.snapshot()["histograms"]
        assert hist["buckets"] == [1.0, 2.0, 4.0]
        assert hist["counts"] == [2, 2, 1, 2]  # len(buckets) + 1 (overflow)
        assert hist["count"] == 7
        assert hist["sum"] == pytest.approx(113.0001)

    def test_redeclaring_different_buckets_is_an_error(self):
        reg = MetricsRegistry()
        reg.histogram("lat", 0.5, buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("lat", 0.5, buckets=(1.0, 3.0))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_timed_observes_clock_delta(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        with reg.timed("phase_seconds", phase="t3"):
            clock.now += 2.5
        [hist] = reg.snapshot()["histograms"]
        assert hist["sum"] == pytest.approx(2.5)
        assert hist["count"] == 1


def _registry_with(counter: float, observations: tuple[float, ...]) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("n", counter)
    reg.gauge("g", counter)
    for value in observations:
        reg.histogram("h", value, buckets=(1.0, 10.0))
    return reg


class TestMerge:
    def test_merge_is_associative(self):
        parts = [
            _registry_with(1, (0.5,)).snapshot(),
            _registry_with(2, (5.0, 20.0)).snapshot(),
            _registry_with(4, (0.1, 0.2)).snapshot(),
        ]
        left = MetricsRegistry()
        left.merge(parts[0])
        left.merge(parts[1])
        left.merge(parts[2])

        inner = MetricsRegistry()
        inner.merge(parts[1])
        inner.merge(parts[2])
        right = MetricsRegistry()
        right.merge(parts[0])
        right.merge(inner.snapshot())

        left_snap, right_snap = left.snapshot(), right.snapshot()
        assert left_snap["counters"] == right_snap["counters"]
        assert left_snap["histograms"] == right_snap["histograms"]

    def test_merge_adds_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.merge(_registry_with(1, (0.5,)).snapshot())
        reg.merge(_registry_with(2, (5.0,)).snapshot())
        snap = reg.snapshot()
        [counter] = snap["counters"]
        assert counter["value"] == 3
        [hist] = snap["histograms"]
        assert hist["counts"] == [1, 1, 0]
        assert hist["count"] == 2

    def test_merge_bucket_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.histogram("h", 0.5, buckets=(1.0,))
        other = MetricsRegistry()
        other.histogram("h", 0.5, buckets=(2.0,))
        with pytest.raises(ConfigurationError):
            reg.merge(other.snapshot())


class TestThreadSafety:
    def test_concurrent_updates_under_executor_pool(self):
        reg = MetricsRegistry()
        per_task = 500

        def hammer(task: int) -> int:
            for i in range(per_task):
                reg.counter("ops_total", 1, worker=str(task % 2))
                reg.histogram("lat", (i % 7) * 0.01, buckets=(0.02, 0.05))
            return task

        executor = make_executor(workers=4, backend="thread")
        try:
            executor.map_tasks(hammer, list(range(8)))
        finally:
            executor.close()
        snap = reg.snapshot()
        assert sum(c["value"] for c in snap["counters"]) == 8 * per_task
        [hist] = snap["histograms"]
        assert hist["count"] == 8 * per_task

    def test_concurrent_updates_raw_threads(self):
        reg = MetricsRegistry()

        def hammer() -> None:
            for _ in range(1000):
                reg.counter("ops_total", 1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        [counter] = reg.snapshot()["counters"]
        assert counter["value"] == 8000


class TestPrometheusRendering:
    def test_rendering_is_deterministic_and_cumulative(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", 2, model="b")
        reg.counter("requests_total", 1, model="a")
        reg.gauge("workers", 4)
        reg.histogram("lat_seconds", 0.5, buckets=(1.0, 2.0))
        reg.histogram("lat_seconds", 1.5, buckets=(1.0, 2.0))
        text = reg.render_prometheus()
        assert text == reg.render_prometheus()  # deterministic
        lines = text.splitlines()
        assert "# TYPE requests_total counter" in lines
        assert 'requests_total{model="a"} 1' in lines
        assert 'requests_total{model="b"} 2' in lines
        assert "workers 4" in lines
        # Prometheus histogram buckets are cumulative and end at +Inf.
        assert 'lat_seconds_bucket{le="1"} 1' in lines
        assert 'lat_seconds_bucket{le="2"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_count 2" in lines

    def test_label_ordering_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("x_total", 1, zeta="1", alpha="2")
        assert 'x_total{alpha="2",zeta="1"} 1' in reg.render_prometheus()


class TestAbsorb:
    def test_absorb_serving_stats_includes_explicit_scheduler_zeros(self):
        from repro.serving.service import ServingStats

        stats = ServingStats()
        stats.bump("requests")
        stats.record_latency(0.003)
        reg = MetricsRegistry()
        reg.absorb_serving_stats(stats)  # inline drain: no scheduler
        names = {c["name"] for c in reg.snapshot()["counters"]}
        # The scheduler counters appear as explicit zeros, not silently
        # dropped (the ISSUE-7 inline-drain bugfix).
        assert "scheduler_batches_total" in names
        values = {c["name"]: c["value"] for c in reg.snapshot()["counters"]}
        assert values["scheduler_batches_total"] == 0

    def test_absorb_reliability_uses_current_counters(self):
        from repro.reliability import counters as rel_counters

        rel_counters.reset()
        rel_counters.record("request_retries")
        try:
            reg = MetricsRegistry()
            reg.absorb_reliability()
            values = {c["name"]: c["value"] for c in reg.snapshot()["counters"]}
            assert values["reliability_request_retries_total"] == 1
        finally:
            rel_counters.reset()


class TestGlobalSlot:
    def test_set_and_get(self):
        previous = get_registry()
        reg = MetricsRegistry()
        try:
            set_registry(reg)
            assert get_registry() is reg
        finally:
            set_registry(previous)

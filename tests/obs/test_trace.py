"""Tests for the span layer: nesting, checksummed export, no-op mode."""

from __future__ import annotations

import json

import pytest

from repro.errors import MatcherError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    Tracer,
    _NOOP,
    active_tracer,
    install_tracer,
    span,
    uninstall_tracer,
)
from repro.runtime.persist import canonical_json, sha256_hex


@pytest.fixture
def tracer(tmp_path):
    """An installed tracer exporting to a temp file; always uninstalled."""
    installed = install_tracer(Tracer(tmp_path / "trace.jsonl"))
    yield installed
    uninstall_tracer()


def _flushed_records(tracer: Tracer) -> list[dict]:
    tracer.flush()
    return [json.loads(line) for line in tracer.path.read_text().splitlines()]


class TestNoop:
    def test_span_without_tracer_is_the_shared_noop(self):
        assert active_tracer() is None
        handle = span("anything", k=1)
        assert handle is _NOOP
        # Usable as a context manager, set() chains, records nothing.
        with span("anything") as s:
            assert s.set(x=1) is s

    def test_uninstall_is_idempotent(self):
        assert uninstall_tracer() is None
        assert span("x") is _NOOP


class TestNesting:
    def test_parent_child_linking(self, tracer):
        with span("outer"):
            with span("inner"):
                pass
        by_name = {r["name"]: r for r in _flushed_records(tracer) if r["kind"] == "span"}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_sibling_spans_share_a_parent(self, tracer):
        with span("parent"):
            with span("a"):
                pass
            with span("b"):
                pass
        by_name = {r["name"]: r for r in _flushed_records(tracer) if r["kind"] == "span"}
        assert by_name["a"]["parent_id"] == by_name["parent"]["span_id"]
        assert by_name["b"]["parent_id"] == by_name["parent"]["span_id"]

    def test_context_restored_after_exit(self, tracer):
        with span("first"):
            pass
        with span("second"):
            pass
        by_name = {r["name"]: r for r in _flushed_records(tracer) if r["kind"] == "span"}
        assert by_name["second"]["parent_id"] is None


class TestRecords:
    def test_error_status_and_exception_name(self, tracer):
        with pytest.raises(MatcherError):
            with span("failing"):
                raise MatcherError("boom")
        [record] = [r for r in _flushed_records(tracer) if r["kind"] == "span"]
        assert record["status"] == "error"
        assert record["error"] == "MatcherError"

    def test_attrs_merge_initial_and_set(self, tracer):
        with span("cell", matcher="Ditto") as s:
            s.set(outcome="ok", attempts=1)
        [record] = [r for r in _flushed_records(tracer) if r["kind"] == "span"]
        assert record["attrs"] == {"matcher": "Ditto", "outcome": "ok", "attempts": 1}

    def test_durations_are_nonnegative_and_ordered(self, tracer):
        with span("outer"):
            with span("inner"):
                pass
        by_name = {r["name"]: r for r in _flushed_records(tracer) if r["kind"] == "span"}
        assert by_name["inner"]["dur_s"] >= 0
        assert by_name["outer"]["dur_s"] >= by_name["inner"]["dur_s"]


class TestFlush:
    def test_header_and_per_line_checksums(self, tracer):
        with span("one"):
            pass
        records = _flushed_records(tracer)
        header = records[0]
        assert header["kind"] == "header"
        assert header["format"] == "repro-trace-jsonl"
        assert header["spans"] == 1
        for record in records:
            digest = record.pop("sha256")
            assert sha256_hex(canonical_json(record)) == digest

    def test_flush_is_repeatable_and_atomic_rewrite(self, tracer):
        with span("one"):
            pass
        assert tracer.flush() == 1
        with span("two"):
            pass
        assert tracer.flush() == 2  # whole-file rewrite includes both
        names = [
            r["name"] for r in _flushed_records(tracer) if r["kind"] == "span"
        ]
        assert names == ["one", "two"]

    def test_spans_recorded_counts_finished_spans(self, tracer):
        assert tracer.spans_recorded == 0
        with span("a"):
            assert tracer.spans_recorded == 0  # not finished yet
        assert tracer.spans_recorded == 1


class TestRegistryFeed:
    def test_finished_spans_feed_histogram_and_counter(self, tmp_path):
        registry = MetricsRegistry()
        install_tracer(Tracer(tmp_path / "t.jsonl", registry=registry))
        try:
            with span("grid.cell"):
                pass
            with pytest.raises(ValueError):
                with span("grid.cell"):
                    raise ValueError("x")
        finally:
            uninstall_tracer()
        snap = registry.snapshot()
        counters = {
            (c["name"], c["labels"].get("status")): c["value"]
            for c in snap["counters"]
        }
        assert counters[("spans_total", "ok")] == 1
        assert counters[("spans_total", "error")] == 1
        [hist] = snap["histograms"]
        assert hist["name"] == "span_seconds"
        assert hist["count"] == 2

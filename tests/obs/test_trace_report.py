"""Tests for scripts/trace_report.py: verification, summary, exit codes."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.obs.trace import Tracer, install_tracer, span, uninstall_tracer

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

import trace_report  # noqa: E402  (scripts/ is not a package)


@pytest.fixture
def trace_path(tmp_path):
    """A small flushed trace: one cell, two requests (one retried, one failed)."""
    path = tmp_path / "trace.jsonl"
    tracer = install_tracer(Tracer(path))
    try:
        with span("grid.cell", matcher="m", target="ABT") as cell:
            with span("llm.request") as request:
                request.set(attempts=3)
            with pytest.raises(ValueError):
                with span("llm.request") as request:
                    request.set(attempts=1)
                    raise ValueError("terminal")
            cell.set(outcome="ok", attempts=1)
        with span("grid.cell", matcher="m", target="BEER") as cell:
            cell.set(outcome="failed", attempts=2, error_type="LLMError")
    finally:
        tracer.flush()
        uninstall_tracer()
    return path


class TestLoadTrace:
    def test_valid_trace_loads_fully(self, trace_path):
        spans, problems = trace_report.load_trace(trace_path)
        assert problems == []
        assert len(spans) == 4  # header excluded

    def test_corrupt_interior_line_is_skipped_and_reported(self, trace_path):
        lines = trace_path.read_text().splitlines()
        lines[2] = lines[2].replace('"dur_s"', '"dur_x"')  # break a checksum
        trace_path.write_text("\n".join(lines) + "\n")
        spans, problems = trace_report.load_trace(trace_path)
        assert len(spans) == 3
        assert problems == ["line 3: corrupt record (skipped)"]

    def test_torn_tail_is_tolerated_silently(self, trace_path):
        raw = trace_path.read_text()
        torn = raw.rstrip("\n")[: len(raw) - 40]  # cut mid-record, no newline
        trace_path.write_text(torn)
        spans, problems = trace_report.load_trace(trace_path)
        assert problems == []
        assert len(spans) == 3

    def test_tampered_payload_fails_checksum(self, trace_path):
        lines = trace_path.read_text().splitlines()
        lines[1] = lines[1].replace('"status":"ok"', '"status":"no"')
        trace_path.write_text("\n".join(lines) + "\n")
        _spans, problems = trace_report.load_trace(trace_path)
        assert problems  # the forged line is flagged


class TestSummarize:
    def test_stage_table_and_attribution(self, trace_path):
        spans, _ = trace_report.load_trace(trace_path)
        report = trace_report.summarize(spans)
        assert report["stages"]["grid.cell"]["count"] == 2
        assert report["stages"]["llm.request"]["count"] == 2
        assert report["stages"]["llm.request"]["errors"] == 1
        a = report["attribution"]
        assert a["llm_requests"] == 2
        assert a["llm_requests_retried"] == 1
        assert a["llm_extra_attempts"] == 2  # one request took 3 attempts
        assert a["llm_request_errors"] == 1
        assert a["grid_cells"] == 2
        assert a["grid_cells_retried"] == 1
        assert a["grid_cells_failed"] == 1

    def test_percentiles_are_ordered(self, trace_path):
        spans, _ = trace_report.load_trace(trace_path)
        for stage in trace_report.summarize(spans)["stages"].values():
            assert stage["p50_s"] <= stage["p95_s"] <= stage["max_s"]


class TestCli:
    def test_exit_zero_and_renders_table(self, trace_path, capsys):
        assert trace_report.main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "grid.cell" in out
        assert "retries:" in out

    def test_json_mode_is_machine_readable(self, trace_path, capsys):
        assert trace_report.main([str(trace_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spans"] == 4
        assert document["problems"] == []

    def test_empty_trace_exits_one(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trace_report.main([str(empty)]) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert trace_report.main([str(tmp_path / "nope.jsonl")]) == 2

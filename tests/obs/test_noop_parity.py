"""Observability must be invisible when off and result-neutral when on.

Runs a deliberately tiny full study three times in-process: twice with
observability disabled (the documents must be byte-identical modulo the
volatile timing blocks, with no ``observability`` key at all) and once
with tracing enabled (every table must match the untraced runs exactly,
the ``observability`` block must appear, and the trace file must parse
and verify through ``scripts/trace_report.py``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.config import StudyConfig, SurrogateScale
from repro.reliability import RetryPolicy
from repro.reliability.wiring import activate_policy, deactivate_policy
from repro.runtime.persist import canonical_json
from repro.study.full_run import run_study

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))

import trace_report  # noqa: E402

#: Keys that legitimately differ between two identical runs (timings and
#: the integrity footer over them) — same contract as the crash-resume
#: harness.  ``observability`` is deliberately NOT volatile: its absence
#: when disabled is part of what this module asserts.
VOLATILE_KEYS = {"runtime", "wall_clock_seconds", "_integrity"}

_CODES = ("ABT", "BEER")


def _tiny_config() -> StudyConfig:
    return StudyConfig(
        name="obs-parity",
        seeds=(0,),
        test_fraction=0.2,
        train_pair_budget=120,
        epochs=1,
        dataset_scale=0.05,
        surrogate=SurrogateScale(
            d_model=16, n_layers=1, n_heads=2, d_ff=32, max_len=32, vocab_size=1024
        ),
    )


def _stable(document: dict) -> dict:
    return {k: v for k, v in document.items() if k not in VOLATILE_KEYS}


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Two untraced runs and one traced run of the same tiny study."""
    directory = tmp_path_factory.mktemp("obs_parity")
    config = _tiny_config()
    documents = {}
    # The retry layer is active for ALL runs (identically, so parity
    # still holds) because ``llm.request`` spans live inside the
    # retrying client — without it the traced run could not demonstrate
    # the cell -> retry -> batch -> infer coverage the ISSUE pins.
    activate_policy(RetryPolicy(max_attempts=1))
    try:
        for label in ("plain_a", "plain_b"):
            out = directory / f"{label}.json"
            run_study(config, out, codes=_CODES)
            documents[label] = json.loads(out.read_text())
        trace = directory / "traced.trace.jsonl"
        out = directory / "traced.json"
        run_study(config, out, codes=_CODES, trace_path=trace)
        documents["traced"] = json.loads(out.read_text())
        documents["trace_path"] = trace
    finally:
        deactivate_policy()
    return documents


class TestDisabled:
    def test_no_observability_key(self, runs):
        assert "observability" not in runs["plain_a"]
        assert "observability" not in runs["plain_b"]

    def test_repeat_runs_byte_identical_modulo_timing(self, runs):
        assert canonical_json(_stable(runs["plain_a"])) == canonical_json(
            _stable(runs["plain_b"])
        )


class TestEnabled:
    def test_tables_unchanged_by_tracing(self, runs):
        traced = _stable(runs["traced"])
        traced.pop("observability")
        assert canonical_json(traced) == canonical_json(_stable(runs["plain_a"]))

    def test_observability_block_shape(self, runs):
        block = runs["traced"]["observability"]
        assert block["enabled"] is True
        assert block["trace_path"] == str(runs["trace_path"])
        assert block["spans_recorded"] > 0
        metrics = block["metrics"]
        assert any(
            c["name"] == "spans_total" for c in metrics["counters"]
        )
        assert any(
            h["name"] == "span_seconds" for h in metrics["histograms"]
        )

    def test_trace_file_verifies_and_covers_the_stages(self, runs):
        spans, problems = trace_report.load_trace(runs["trace_path"])
        assert problems == []
        report = trace_report.summarize(spans)
        stage_names = set(report["stages"])
        # The acceptance coverage: cell -> retry -> batch -> infer.
        assert {"grid.cell", "llm.request", "batch.process", "infer.logits"} <= stage_names
        assert report["spans"] == runs["traced"]["observability"]["spans_recorded"]

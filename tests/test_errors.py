"""The exception hierarchy contract: everything under ReproError."""

from __future__ import annotations

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.DatasetError,
        errors.SchemaMismatchError,
        errors.SerializationError,
        errors.MatcherError,
        errors.NotFittedError,
        errors.LLMError,
        errors.PromptError,
        errors.BudgetExceededError,
        errors.CostModelError,
        errors.GradientError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_specialisations():
    assert issubclass(errors.NotFittedError, errors.MatcherError)
    assert issubclass(errors.BudgetExceededError, errors.LLMError)
    assert issubclass(errors.SchemaMismatchError, errors.DatasetError)


def test_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.PromptError("bad prompt")

"""Tests for optimisers, gradient clipping and the LR schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import SGD, Adam, AdamW, LinearWarmupSchedule, clip_grad_norm
from repro.nn.layers import Parameter


def quadratic_step(optimizer, param):
    """One gradient step on f(w) = ||w||^2 / 2 (gradient = w)."""
    param.grad = param.data.copy()
    optimizer.step()


class TestSGD:
    def test_descends_quadratic(self):
        w = Parameter(np.array([10.0, -10.0]))
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, w)
        assert np.abs(w.data).max() < 1e-3

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.array([10.0]))
        w_momentum = Parameter(np.array([10.0]))
        plain, momentum = SGD([w_plain], lr=0.01), SGD([w_momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_step(plain, w_plain)
            quadratic_step(momentum, w_momentum)
        assert abs(w_momentum.data[0]) < abs(w_plain.data[0])

    def test_skips_none_grads(self):
        w = Parameter(np.ones(2))
        SGD([w], lr=0.1).step()
        np.testing.assert_allclose(w.data, np.ones(2))


class TestAdam:
    def test_descends_quadratic(self):
        w = Parameter(np.array([5.0, -3.0]))
        opt = Adam([w], lr=0.1)
        for _ in range(200):
            quadratic_step(opt, w)
        assert np.abs(w.data).max() < 1e-2

    def test_bias_correction_first_step(self):
        w = Parameter(np.array([1.0]))
        opt = Adam([w], lr=0.1)
        w.grad = np.array([1.0])
        opt.step()
        # After bias correction the first step is ~lr regardless of scale.
        assert w.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_adamw_decays_weights(self):
        w_adam = Parameter(np.array([1.0]))
        w_adamw = Parameter(np.array([1.0]))
        adam, adamw = Adam([w_adam], lr=0.01), AdamW([w_adamw], lr=0.01, weight_decay=0.5)
        for opt, w in ((adam, w_adam), (adamw, w_adamw)):
            w.grad = np.array([0.001])
            opt.step()
        assert w_adamw.data[0] < w_adam.data[0]


class TestValidation:
    def test_empty_params_raise(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.ones(1))], lr=0.0)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        pre_norm = clip_grad_norm([w], max_norm=1.0)
        assert pre_norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients(self):
        w = Parameter(np.zeros(2))
        w.grad = np.array([0.1, 0.1])
        clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, [0.1, 0.1])


class TestSchedule:
    def test_warmup_then_decay(self):
        w = Parameter(np.ones(1))
        opt = SGD([w], lr=1.0)
        schedule = LinearWarmupSchedule(opt, warmup_steps=2, total_steps=10)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert all(a >= b for a, b in zip(lrs[1:], lrs[2:]))  # monotone decay

    def test_invalid_steps_raise(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ConfigurationError):
            LinearWarmupSchedule(opt, warmup_steps=5, total_steps=3)


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        from repro.nn import Linear, load_checkpoint, save_checkpoint

        rng = np.random.default_rng(0)
        a, b = Linear(3, 2, rng), Linear(3, 2, np.random.default_rng(9))
        path = tmp_path / "model.npz"
        save_checkpoint(a, path)
        load_checkpoint(b, path)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        np.testing.assert_allclose(a.bias.data, b.bias.data)

    def test_empty_module_raises(self, tmp_path):
        from repro.nn import Module, save_checkpoint
        from repro.errors import ConfigurationError

        class Empty(Module):
            pass

        with pytest.raises(ConfigurationError):
            save_checkpoint(Empty(), tmp_path / "empty.npz")

"""Autograd engine tests: numerical gradient checks and op semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import GradientError
from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, stack


def numeric_gradient(f, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x0)
    flat = x0.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f(Tensor(x0)).item()
        flat[i] = orig - eps
        down = f(Tensor(x0)).item()
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(f, x0: np.ndarray, tol: float = 1e-6) -> None:
    x = Tensor(x0.copy(), requires_grad=True)
    f(x).backward()
    expected = numeric_gradient(f, x0.copy())
    np.testing.assert_allclose(x.grad, expected, atol=tol, rtol=1e-4)


RNG = np.random.default_rng(42)


class TestGradients:
    def test_add_mul(self):
        check_gradient(lambda x: ((x * 3.0 + 1.0) * x).sum(), RNG.normal(size=(3, 4)))

    def test_sub_div(self):
        check_gradient(lambda x: ((x - 0.5) / 2.0).sum(), RNG.normal(size=(4,)))

    def test_pow(self):
        check_gradient(lambda x: (x ** 3).sum(), RNG.normal(size=(5,)))

    def test_matmul_2d(self):
        w = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda x: (x @ w).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_batched(self):
        w = Tensor(RNG.normal(size=(2, 5, 3)))
        check_gradient(lambda x: (x @ w).sum(), RNG.normal(size=(2, 4, 5)))

    def test_broadcast_add(self):
        b = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda x: (x + b).sum(), RNG.normal(size=(3, 4)))

    def test_broadcast_grad_to_bias(self):
        bias_data = RNG.normal(size=(4,))

        def f(b: Tensor) -> Tensor:
            return (Tensor(np.ones((3, 4))) * 2.0 + b).sum()

        check_gradient(f, bias_data)

    def test_sum_axis_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(),
                       RNG.normal(size=(3, 4)))

    def test_mean(self):
        check_gradient(lambda x: x.mean(), RNG.normal(size=(3, 4)))

    def test_exp_log(self):
        check_gradient(lambda x: (x.exp() + (x * x + 1.0).log()).sum(),
                       RNG.normal(size=(6,)))

    def test_tanh_relu(self):
        # Offset away from the ReLU kink for a stable numeric gradient.
        check_gradient(lambda x: (x.tanh() + (x + 5.0).relu()).sum(),
                       RNG.normal(size=(6,)))

    def test_reshape_transpose(self):
        check_gradient(
            lambda x: (x.reshape(2, 6).transpose(1, 0) * 2.0).sum(),
            RNG.normal(size=(3, 4)),
        )

    def test_swapaxes(self):
        check_gradient(lambda x: (x.swapaxes(0, 1) * x.swapaxes(0, 1)).sum(),
                       RNG.normal(size=(3, 4)))

    def test_getitem_slice(self):
        check_gradient(lambda x: (x[1:, :2] * 3.0).sum(), RNG.normal(size=(3, 4)))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradient(lambda x: x[idx].sum(), RNG.normal(size=(3, 4)))

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        check_gradient(lambda x: x.masked_fill(mask, 0.0).sum(), RNG.normal(size=(2, 2)))

    def test_concat(self):
        def f(x: Tensor) -> Tensor:
            return (concat([x, x * 2.0], axis=1)).sum()

        check_gradient(f, RNG.normal(size=(2, 3)))

    def test_stack(self):
        def f(x: Tensor) -> Tensor:
            return (stack([x, x * 3.0], axis=0)).sum()

        check_gradient(f, RNG.normal(size=(2, 3)))

    def test_reused_node_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x  # x used twice
        y.backward()
        assert x.grad[0] == pytest.approx(2 * 2.0 + 1.0)


class TestBackwardSemantics:
    def test_backward_non_scalar_raises(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_without_grad_raises(self):
        x = Tensor(np.ones(2))
        with pytest.raises(GradientError):
            x.backward()

    def test_explicit_seed_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_no_grad_context(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_no_grad_retains_no_graph(self):
        # Regression: results built under ``no_grad()`` used to keep their
        # ``_parents`` tuple and backward closure alive, pinning every
        # intermediate of an inference pass in memory.
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2 + 1).sum()
        assert y._parents == ()
        assert y._backward is None

    def test_no_grad_inputs_are_collectable(self):
        # The result must not keep its inputs alive through ``_parents``.
        import gc
        import weakref

        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        ref = weakref.ref(x)
        del x
        gc.collect()
        assert ref() is None
        assert y.data is not None  # result outlives its inputs

    def test_no_grad_is_thread_local(self):
        # Regression: a process-wide flag let one grid cell's ``no_grad()``
        # evaluation disable graph construction inside another cell's
        # training step, crashing ``loss.backward()`` under thread pools.
        import threading

        inside = threading.Event()
        release = threading.Event()
        seen: dict[str, bool] = {}

        def evaluator():
            with no_grad():
                inside.set()
                release.wait(timeout=10)

        def trainer():
            inside.wait(timeout=10)
            seen["enabled"] = is_grad_enabled()
            x = Tensor(np.ones(2), requires_grad=True)
            loss = (x * 3).sum()
            loss.backward()
            seen["grad_ok"] = x.grad is not None
            release.set()

        threads = [threading.Thread(target=evaluator), threading.Thread(target=trainer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert seen == {"enabled": True, "grad_ok": True}

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert not x.detach().requires_grad

    def test_wrapping_tensor_raises(self):
        with pytest.raises(GradientError):
            Tensor(Tensor(np.ones(2)))


class TestConstructors:
    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).numpy().sum() == 4.0

    def test_item_and_size(self):
        t = Tensor(np.array(3.5))
        assert t.item() == 3.5
        assert t.size == 1

    def test_repr(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))


@given(
    hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=1, max_dims=2, max_side=4),
        elements=st.floats(-3, 3),
    )
)
@settings(max_examples=30, deadline=None)
def test_sum_matches_numpy(arr):
    assert Tensor(arr).sum().item() == pytest.approx(arr.sum(), abs=1e-9)


@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(-3, 3),
    )
)
@settings(max_examples=30, deadline=None)
def test_double_backward_chain_linear(arr):
    """Gradient of sum(a*x) wrt x is a, for random a."""
    a = Tensor(arr)
    x = Tensor(np.ones_like(arr), requires_grad=True)
    (a * x).sum().backward()
    np.testing.assert_allclose(x.grad, arr)

"""Tests for the transformer stacks: shapes, masks, flags, learnability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Linear, TransformerDecoder, TransformerEncoder
from repro.nn import functional as F
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def _encoder(rng, **kwargs):
    defaults = dict(vocab_size=50, dim=16, n_layers=2, n_heads=2, d_ff=32,
                    max_len=10, rng=rng, dropout=0.0)
    defaults.update(kwargs)
    return TransformerEncoder(**defaults)


class TestEncoder:
    def test_output_shape(self, rng):
        enc = _encoder(rng)
        out = enc(rng.integers(0, 50, size=(3, 10)))
        assert out.shape == (3, 10, 16)

    def test_flags_change_output(self, rng):
        enc = _encoder(rng)
        ids = rng.integers(0, 50, size=(2, 10))
        base = enc(ids).numpy()
        flagged = enc(ids, flags=np.ones_like(ids)).numpy()
        assert not np.allclose(base, flagged)

    def test_padding_isolated(self, rng):
        enc = _encoder(rng)
        ids = rng.integers(1, 50, size=(1, 10))
        mask = np.zeros((1, 10), dtype=bool)
        mask[0, 6:] = True
        base = enc(ids, key_padding_mask=mask).numpy()
        perturbed = ids.copy()
        perturbed[0, 7] = 33
        out = enc(perturbed, key_padding_mask=mask).numpy()
        np.testing.assert_allclose(base[0, :6], out[0, :6], atol=1e-10)

    def test_learns_first_token_classification(self, rng):
        """End-to-end learnability: classify by first content token."""
        enc = _encoder(rng, n_layers=1)
        head = Linear(16, 2, rng)
        params = enc.parameters() + head.parameters()
        opt = Adam(params, lr=1e-2)
        X = rng.integers(1, 50, size=(64, 10))
        y = (X[:, 0] > 25).astype(int)
        for _ in range(40):
            logits = head(enc(X)[:, 0, :])
            loss = F.cross_entropy(logits, y)
            for p in params:
                p.grad = None
            loss.backward()
            opt.step()
        accuracy = (logits.numpy().argmax(axis=1) == y).mean()
        assert accuracy > 0.9


class TestDecoder:
    def test_lm_logits_shape(self, rng):
        dec = TransformerDecoder(50, 16, 1, 2, 32, 10, rng, dropout=0.0)
        out = dec(rng.integers(0, 50, size=(2, 10)))
        assert out.shape == (2, 10, 50)

    def test_hidden_matches_forward(self, rng):
        dec = TransformerDecoder(50, 16, 1, 2, 32, 10, rng, dropout=0.0)
        ids = rng.integers(0, 50, size=(2, 10))
        hidden = dec.hidden(ids)
        full = dec(ids)
        np.testing.assert_allclose(
            dec.lm_head(hidden).numpy(), full.numpy(), atol=1e-12
        )

    def test_causality(self, rng):
        dec = TransformerDecoder(50, 16, 2, 2, 32, 10, rng, dropout=0.0)
        ids = rng.integers(0, 50, size=(1, 10))
        base = dec(ids).numpy()
        perturbed = ids.copy()
        perturbed[0, -1] = (perturbed[0, -1] + 1) % 50
        out = dec(perturbed).numpy()
        np.testing.assert_allclose(base[0, :-1], out[0, :-1], atol=1e-10)

    def test_cross_attention_requires_memory(self, rng):
        dec = TransformerDecoder(50, 16, 1, 2, 32, 10, rng, cross_attention=True, dropout=0.0)
        with pytest.raises(ValueError):
            dec(rng.integers(0, 50, size=(1, 5)))

    def test_cross_attention_uses_memory(self, rng):
        dec = TransformerDecoder(50, 16, 1, 2, 32, 10, rng, cross_attention=True, dropout=0.0)
        ids = rng.integers(0, 50, size=(1, 5))
        mem_a = Tensor(rng.normal(size=(1, 7, 16)))
        mem_b = Tensor(rng.normal(size=(1, 7, 16)))
        out_a = dec(ids, memory=mem_a).numpy()
        out_b = dec(ids, memory=mem_b).numpy()
        assert not np.allclose(out_a, out_b)

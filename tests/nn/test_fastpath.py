"""Tests for the fused no-grad inference kernels (repro.nn.fastpath)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    LayerNorm,
    MultiHeadAttention,
    Tensor,
    TransformerEncoder,
    fastpath,
    no_grad,
)
from repro.nn import functional as F
from repro.nn.fastpath import PreparedPaddingMask, causal_mask


class TestKernelParity:
    """Each fused kernel must be byte-identical to its Tensor twin."""

    def test_softmax_matches_functional(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 7))
        expected = F.softmax(Tensor(x)).numpy()
        assert np.array_equal(fastpath.softmax(x), expected)
        assert np.array_equal(fastpath.softmax_(x.copy()), expected)

    def test_softmax_inplace_consumes_input(self):
        x = np.zeros((2, 3))
        out = fastpath.softmax_(x)
        assert out is x

    def test_gelu_matches_functional(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 9)) * 3.0
        expected = F.gelu(Tensor(x)).numpy()
        assert np.array_equal(fastpath.gelu_(x.copy()), expected)

    def test_layer_norm_matches_module(self):
        rng = np.random.default_rng(2)
        norm = LayerNorm(8)
        norm.gain.data = rng.normal(size=8)
        norm.bias.data = rng.normal(size=8)
        x = rng.normal(size=(3, 5, 8))
        with no_grad():
            expected = norm(Tensor(x)).numpy()
        assert np.array_equal(fastpath.layer_norm(norm, x.copy()), expected)

    @pytest.mark.parametrize("causal", [False, True])
    def test_attention_matches_module(self, causal):
        rng = np.random.default_rng(3)
        attn = MultiHeadAttention(8, 2, rng, causal=causal)
        attn.eval()
        x = rng.normal(size=(2, 6, 8))
        pad = np.zeros((2, 6), dtype=bool)
        pad[0, 4:] = True
        with no_grad():
            expected = attn(Tensor(x), key_padding_mask=pad).numpy()
        prepared = PreparedPaddingMask.prepare(pad, 2, 6)
        got = fastpath.attention(attn, x, key_padding_mask=prepared)
        assert np.array_equal(got, expected)

    def test_encoder_forward_matches_module(self):
        rng = np.random.default_rng(4)
        encoder = TransformerEncoder(32, 8, 2, 2, 16, 10, rng)
        encoder.eval()
        ids = rng.integers(0, 32, size=(3, 10))
        pad = np.arange(10)[None, :] >= rng.integers(4, 11, size=(3, 1))
        flags = rng.integers(0, 3, size=(3, 10))
        with no_grad():
            expected = encoder(ids, key_padding_mask=pad, flags=flags).numpy()
        got = fastpath.encoder_forward(encoder, ids, pad, flags)
        assert np.array_equal(got, expected)


class TestCausalMaskCache:
    def test_same_shape_returns_same_object(self):
        assert causal_mask(6, 6) is causal_mask(6, 6)
        assert causal_mask(6, 6) is not causal_mask(6, 7)

    def test_mask_is_read_only(self):
        mask = causal_mask(4, 4)
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0, 0, 0] = True

    def test_mask_shape_and_content(self):
        mask = causal_mask(3, 3)
        assert mask.shape == (1, 1, 3, 3)
        assert np.array_equal(mask[0, 0], np.triu(np.ones((3, 3), dtype=bool), k=1))


class TestPreparedPaddingMask:
    def test_prepare_broadcasts_for_scores(self):
        pad = np.zeros((2, 5), dtype=bool)
        prepared = PreparedPaddingMask.prepare(pad, 2, 5)
        assert prepared.mask.shape == (2, 1, 1, 5)

    def test_prepare_is_idempotent(self):
        prepared = PreparedPaddingMask.prepare(np.zeros((2, 5), dtype=bool), 2, 5)
        assert PreparedPaddingMask.prepare(prepared, 2, 5) is prepared

    def test_bad_shape_raises(self):
        with pytest.raises(ConfigurationError, match="key_padding_mask shape"):
            PreparedPaddingMask.prepare(np.zeros((2, 4), dtype=bool), 2, 5)

    def test_check_rejects_mismatched_reuse(self):
        prepared = PreparedPaddingMask.prepare(np.zeros((2, 5), dtype=bool), 2, 5)
        with pytest.raises(ConfigurationError, match="prepared padding mask"):
            prepared.check(2, 6)


class TestWeightCastCache:
    def _norm(self):
        norm = LayerNorm(4)
        norm.gain.data = np.arange(4, dtype=np.float64)
        return norm

    def test_float64_is_passthrough(self):
        norm = self._norm()
        assert fastpath.cast_param(norm, "gain", np.float64) is norm.gain.data
        assert fastpath.CAST_CACHE_ATTR not in norm.__dict__

    def test_float32_cast_is_memoised(self):
        norm = self._norm()
        first = fastpath.cast_param(norm, "gain", np.float32)
        assert first.dtype == np.float32
        assert fastpath.cast_param(norm, "gain", np.float32) is first

    def test_train_invalidates_casts(self):
        norm = self._norm()
        stale = fastpath.cast_param(norm, "gain", np.float32)
        norm.train()
        norm.gain.data = norm.gain.data + 1.0
        fresh = fastpath.cast_param(norm, "gain", np.float32)
        assert fresh is not stale
        assert np.array_equal(fresh, norm.gain.data.astype(np.float32))

    def test_load_state_dict_invalidates_casts(self):
        norm = self._norm()
        stale = fastpath.cast_param(norm, "gain", np.float32)
        state = norm.state_dict()
        state["gain"] = state["gain"] + 2.0
        norm.load_state_dict(state)
        fresh = fastpath.cast_param(norm, "gain", np.float32)
        assert fresh is not stale
        assert np.array_equal(fresh, norm.gain.data.astype(np.float32))

    def test_invalidate_casts_helper(self):
        norm = self._norm()
        fastpath.cast_param(norm, "gain", np.float32)
        fastpath.invalidate_casts(norm)
        assert fastpath.CAST_CACHE_ATTR not in norm.__dict__


class TestEvalModeGate:
    def test_training_mode_refused(self):
        rng = np.random.default_rng(5)
        encoder = TransformerEncoder(16, 8, 1, 2, 16, 6, rng)
        encoder.train()
        ids = rng.integers(0, 16, size=(1, 6))
        with pytest.raises(ConfigurationError, match="requires eval mode"):
            fastpath.encoder_forward(encoder, ids)

    def test_out_of_range_ids_refused(self):
        rng = np.random.default_rng(6)
        encoder = TransformerEncoder(16, 8, 1, 2, 16, 6, rng)
        encoder.eval()
        with pytest.raises(ConfigurationError, match="out of range"):
            fastpath.encoder_forward(encoder, np.full((1, 6), 99))

"""Tests for softmax/log-softmax/cross-entropy/GELU/dropout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GradientError
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor import check_gradient

RNG = np.random.default_rng(7)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(Tensor(RNG.normal(size=(3, 5))))
        np.testing.assert_allclose(out.numpy().sum(axis=-1), np.ones(3))

    def test_shift_invariance(self):
        x = RNG.normal(size=(2, 4))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_extreme_values_stable(self):
        out = F.softmax(Tensor(np.array([[1e9, 0.0], [-1e9, 0.0]])))
        assert np.isfinite(out.numpy()).all()

    def test_gradient(self):
        w = Tensor(RNG.normal(size=(3, 4)))
        check_gradient(lambda x: (F.softmax(x) * w).sum(), RNG.normal(size=(3, 4)))


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = RNG.normal(size=(2, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).numpy(),
            np.log(F.softmax(Tensor(x)).numpy()),
            atol=1e-12,
        )

    def test_gradient(self):
        w = Tensor(RNG.normal(size=(2, 4)))
        check_gradient(lambda x: (F.log_softmax(x) * w).sum(), RNG.normal(size=(2, 4)))


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_log_n(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_gradient(self):
        targets = np.array([0, 2, 1])
        check_gradient(lambda x: F.cross_entropy(x, targets), RNG.normal(size=(3, 4)))

    def test_ignore_index(self):
        logits_data = RNG.normal(size=(3, 4))
        full = F.cross_entropy(Tensor(logits_data[:2]), np.array([1, 2]))
        masked = F.cross_entropy(Tensor(logits_data), np.array([1, 2, -1]), ignore_index=-1)
        assert masked.item() == pytest.approx(full.item())

    def test_all_ignored_raises(self):
        with pytest.raises(GradientError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([-1, -1]), ignore_index=-1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(GradientError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_3d_logits(self):
        logits = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        loss = F.cross_entropy(logits, RNG.integers(0, 4, size=(2, 3)))
        loss.backward()
        assert logits.grad.shape == (2, 3, 4)


class TestBCE:
    def test_matches_manual(self):
        z = np.array([0.5, -1.0])
        y = np.array([1.0, 0.0])
        probs = 1 / (1 + np.exp(-z))
        expected = -np.mean(y * np.log(probs) + (1 - y) * np.log(1 - probs))
        loss = F.binary_cross_entropy_with_logits(Tensor(z), y)
        assert loss.item() == pytest.approx(expected)

    def test_gradient(self):
        y = np.array([1.0, 0.0, 1.0])
        check_gradient(
            lambda x: F.binary_cross_entropy_with_logits(x, y), RNG.normal(size=(3,))
        )

    def test_extreme_logits_stable(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())


class TestGelu:
    def test_known_points(self):
        out = F.gelu(Tensor(np.array([0.0]))).item()
        assert out == pytest.approx(0.0)
        assert F.gelu(Tensor(np.array([10.0]))).item() == pytest.approx(10.0, abs=1e-3)

    def test_gradient(self):
        check_gradient(lambda x: F.gelu(x).sum(), RNG.normal(size=(5,)))


class TestSigmoid:
    def test_midpoint(self):
        assert F.sigmoid(Tensor(np.array([0.0]))).item() == pytest.approx(0.5)

    def test_gradient(self):
        check_gradient(lambda x: F.sigmoid(x).sum(), RNG.normal(size=(5,)))


class TestDropout:
    def test_identity_when_eval(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_identity_when_p_zero(self):
        x = Tensor(np.ones(4))
        assert F.dropout(x, 0.0, np.random.default_rng(0), training=True) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.05)

    def test_p_one_raises(self):
        with pytest.raises(GradientError):
            F.dropout(Tensor(np.ones(2)), 1.0, np.random.default_rng(0), training=True)

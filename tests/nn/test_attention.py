"""Tests for multi-head attention: masks, shapes, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import MultiHeadAttention
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestShapes:
    def test_self_attention_shape(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_cross_attention_shape(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        q = Tensor(rng.normal(size=(2, 3, 8)))
        kv = Tensor(rng.normal(size=(2, 7, 8)))
        assert attn(q, kv=kv).shape == (2, 3, 8)

    def test_indivisible_heads_raise(self, rng):
        with pytest.raises(ConfigurationError):
            MultiHeadAttention(7, 2, rng)


class TestMasks:
    def test_causal_mask_blocks_future(self, rng):
        attn = MultiHeadAttention(8, 2, rng, causal=True)
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).numpy()
        # Changing the future must not affect earlier positions.
        perturbed = x.copy()
        perturbed[0, -1] += 10.0
        out = attn(Tensor(perturbed)).numpy()
        np.testing.assert_allclose(base[0, :-1], out[0, :-1], atol=1e-10)

    def test_non_causal_sees_everything(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        base = attn(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, -1] += 10.0
        out = attn(Tensor(perturbed)).numpy()
        assert not np.allclose(base[0, 0], out[0, 0])

    def test_padding_mask_hides_keys(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[False, False, True, True]])
        base = attn(Tensor(x), key_padding_mask=mask).numpy()
        perturbed = x.copy()
        perturbed[0, 3] += 100.0  # padded key changes
        out = attn(Tensor(perturbed), key_padding_mask=mask).numpy()
        # Non-pad query outputs unaffected by padded keys.
        np.testing.assert_allclose(base[0, :2], out[0, :2], atol=1e-10)

    def test_bad_mask_shape_raises(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        x = Tensor(rng.normal(size=(2, 4, 8)))
        with pytest.raises(ConfigurationError):
            attn(x, key_padding_mask=np.zeros((2, 5), dtype=bool))


class TestGradients:
    def test_gradients_flow_to_all_projections(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        out = attn(Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True))
        out.sum().backward()
        for _name, p in attn.named_parameters():
            assert p.grad is not None
            assert np.abs(p.grad).sum() > 0

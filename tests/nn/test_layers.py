"""Tests for the module system and basic layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Dropout, Embedding, LayerNorm, Linear, Module, Parameter, Sequential
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_batched_input(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((2, 6, 4))))
        assert out.shape == (2, 6, 3)

    def test_parameters_registered(self, rng):
        layer = Linear(4, 3, rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng)
        with pytest.raises(ConfigurationError):
            emb(np.array([10]))
        with pytest.raises(ConfigurationError):
            emb(np.array([-1]))

    def test_duplicate_ids_accumulate_gradient(self, rng):
        emb = Embedding(5, 2, rng)
        out = emb(np.array([1, 1, 2])).sum()
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8))))
        np.testing.assert_allclose(out.numpy().mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.numpy().std(axis=-1), 1.0, atol=1e-2)

    def test_constant_input_stable(self):
        ln = LayerNorm(4)
        out = ln(Tensor(np.full((2, 4), 7.0)))
        assert np.isfinite(out.numpy()).all()


class TestDropoutLayer:
    def test_train_eval_toggle(self, rng):
        layer = Dropout(0.5, rng)
        x = Tensor(np.ones((100, 100)))
        train_out = layer(x)
        layer.eval()
        eval_out = layer(x)
        assert (train_out.numpy() == 0).any()
        assert not (eval_out.numpy() == 0).any()

    def test_invalid_p(self, rng):
        with pytest.raises(ConfigurationError):
            Dropout(1.5, rng)


class _Composite(Module):
    def __init__(self, rng):
        super().__init__()
        self.a = Linear(4, 4, rng)
        self.blocks = [Linear(4, 4, rng), Linear(4, 2, rng)]
        self.standalone = Parameter(np.zeros(3))

    def forward(self, x):
        x = self.a(x)
        for b in self.blocks:
            x = b(x)
        return x + 0.0 * self.standalone.sum()


class TestModule:
    def test_named_parameters_cover_lists(self, rng):
        model = _Composite(rng)
        names = {name for name, _p in model.named_parameters()}
        assert "a.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "standalone" in names

    def test_n_parameters(self, rng):
        model = Linear(4, 3, rng)
        assert model.n_parameters() == 4 * 3 + 3

    def test_parameters_deduplicated(self, rng):
        model = _Composite(rng)
        shared = model.blocks[0]
        model.extra = shared  # same module reachable twice
        params = model.parameters()
        assert len(params) == len({id(p) for p in params})

    def test_zero_grad(self, rng):
        model = Linear(2, 2, rng)
        out = model(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = _Composite(rng)
        b = _Composite(np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.a.weight.data, b.a.weight.data)

    def test_state_dict_mismatch_raises(self, rng):
        a = Linear(2, 2, rng)
        with pytest.raises(ConfigurationError):
            a.load_state_dict({"weight": np.zeros((2, 2))})  # missing bias

    def test_state_dict_shape_mismatch_raises(self, rng):
        a = Linear(2, 2, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ConfigurationError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng), Dropout(0.2, rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestSequential:
    def test_applies_in_order(self, rng):
        model = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        assert model(Tensor(np.ones((3, 4)))).shape == (3, 2)

"""Tests for checkpointing full surrogate models."""

from __future__ import annotations

import numpy as np

from repro.nn import TransformerEncoder, load_checkpoint, save_checkpoint


class TestModelCheckpoints:
    def test_encoder_roundtrip_preserves_outputs(self, tmp_path):
        rng = np.random.default_rng(0)
        a = TransformerEncoder(50, 16, 1, 2, 32, 8, rng, dropout=0.0)
        b = TransformerEncoder(50, 16, 1, 2, 32, 8, np.random.default_rng(9), dropout=0.0)
        ids = rng.integers(0, 50, size=(2, 8))
        assert not np.allclose(a(ids).numpy(), b(ids).numpy())
        path = tmp_path / "enc.npz"
        save_checkpoint(a, path)
        load_checkpoint(b, path)
        np.testing.assert_allclose(a(ids).numpy(), b(ids).numpy(), atol=1e-12)

    def test_checkpoint_is_plain_npz(self, tmp_path):
        rng = np.random.default_rng(0)
        model = TransformerEncoder(50, 16, 1, 2, 32, 8, rng)
        path = tmp_path / "enc.npz"
        save_checkpoint(model, path)
        with np.load(path) as archive:
            names = set(archive.files)
        assert any(name.startswith("stem.tokens") for name in names)
        assert any(name.startswith("blocks.0.attn") for name in names)

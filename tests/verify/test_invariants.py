"""The registered invariant catalogue: live passes, trips, artifact audits.

The expensive end-to-end facts (all live invariants green, every trip
fires) are each asserted once; the artifact invariants are additionally
driven against hand-damaged study directories to pin *what* they catch,
not just that they run.
"""

from __future__ import annotations

import json

from repro.runtime.journal import JOURNAL_VERSION
from repro.runtime.persist import attach_digest, canonical_json, sha256_hex
from repro.verify import all_invariants, check_all, selftest

_ARTIFACT_INVARIANTS = (
    "document_integrity",
    "journal_checksums",
    "cache_accounting",
    "resume_accounting",
)


def _statuses(report: dict) -> dict[str, str]:
    return {entry["invariant"]: entry["status"] for entry in report["results"]}


def test_catalogue_is_complete_and_documented():
    invariants = all_invariants()
    names = [invariant.name for invariant in invariants]
    assert len(names) == len(set(names)) == 10
    for invariant in invariants:
        assert invariant.description.strip()
        assert invariant.failure_mode.strip()


def test_live_invariants_pass_and_artifact_checks_skip_without_a_study():
    report = check_all()
    statuses = _statuses(report)
    assert report["status"] == "ok", report["violations"]
    for name in _ARTIFACT_INVARIANTS:
        assert statuses[name] == "skipped"
    live = set(statuses) - set(_ARTIFACT_INVARIANTS)
    assert all(statuses[name] == "ok" for name in live)


def test_every_trip_fires():
    report = selftest()
    assert report["status"] == "ok", report["results"]
    assert all(entry["tripped"] for entry in report["results"])


def test_document_integrity_catches_a_tampered_document(tmp_path):
    clean = attach_digest({"table3": {"mean": {"StringSim": 71.2}}})
    (tmp_path / "clean.json").write_text(json.dumps(clean))
    tampered = attach_digest({"table4": {"mean": {"Ditto": 80.0}}})
    tampered["table4"]["mean"]["Ditto"] = 99.9
    (tmp_path / "tampered.json").write_text(json.dumps(tampered))

    report = check_all(study_dir=tmp_path, names=["document_integrity"])
    assert report["status"] == "violations"
    [violation] = report["violations"]
    assert "tampered.json" in violation["message"]


def test_document_integrity_skips_when_nothing_carries_a_digest(tmp_path):
    (tmp_path / "notes.json").write_text(json.dumps({"plain": True}))
    report = check_all(study_dir=tmp_path, names=["document_integrity"])
    assert _statuses(report)["document_integrity"] == "skipped"


def _journal_record(payload: dict) -> dict:
    return {
        "v": JOURNAL_VERSION,
        "key": "k" * 64,
        "kind": "failure",
        "phase": "verify",
        "matcher": "StringSim",
        "target": "ABT",
        "payload": payload,
        "sha256": sha256_hex(canonical_json(payload)),
    }


def test_journal_checksums_catch_damage_but_tolerate_a_torn_tail(tmp_path):
    good = _journal_record({"error_type": "TransientLLMError"})
    bad = _journal_record({"error_type": "TransientLLMError"})
    bad["payload"]["error_type"] = "RateLimitError"  # checksum now stale
    torn = json.dumps(_journal_record({"error_type": "X"}))[:25]  # crash tail
    (tmp_path / "cells.journal.jsonl").write_text(
        json.dumps(good) + "\n" + json.dumps(bad) + "\n" + torn
    )

    report = check_all(study_dir=tmp_path, names=["journal_checksums"])
    [violation] = report["violations"]
    assert "checksum mismatch" in violation["message"]
    assert violation["detail"]["line"] == 2  # the torn line 3 is tolerated
    # And the scan left the journal untouched: no quarantine sidecars.
    assert list(tmp_path.glob("*.corrupt-*")) == []


def test_cache_accounting_catches_an_inconsistent_hit_rate(tmp_path):
    document = {
        "runtime": {
            "cache": {"hits": 10, "misses": 30, "hit_rate": 0.9,
                      "saved_prompt_tokens": 5, "saved_dollars": 0.01},
        }
    }
    (tmp_path / "full_study.json").write_text(json.dumps(document))
    report = check_all(study_dir=tmp_path, names=["cache_accounting"])
    [violation] = report["violations"]
    assert "hit_rate" in violation["message"]
    assert violation["detail"]["expected"] == 0.25


def test_resume_accounting_catches_a_phase_total_mismatch(tmp_path):
    document = {
        "runtime": {
            "phases": {"table3": {"tasks": 4}, "table4": {"tasks": 2},
                       "static": {}},
            "resume": {"cells_replayed": 0, "cells_computed": 5,
                       "journal_records_loaded": 0, "corrupt_quarantined": 0},
        }
    }
    (tmp_path / "full_study.json").write_text(json.dumps(document))
    report = check_all(study_dir=tmp_path, names=["resume_accounting"])
    [violation] = report["violations"]
    assert "cells_computed" in violation["message"]
    assert violation["detail"]["phase_tasks"] == 6


def test_accounting_checks_accept_a_consistent_document(tmp_path):
    document = {
        "runtime": {
            "cache": {"hits": 1, "misses": 3, "hit_rate": 0.25,
                      "saved_prompt_tokens": 2, "saved_dollars": 0.0},
            "phases": {"table3": {"tasks": 6}, "static": {}},
            "resume": {"cells_replayed": 2, "cells_computed": 6,
                       "journal_records_loaded": 2, "corrupt_quarantined": 0},
        }
    }
    (tmp_path / "full_study.json").write_text(json.dumps(document))
    report = check_all(
        study_dir=tmp_path, names=["cache_accounting", "resume_accounting"]
    )
    assert report["status"] == "ok", report["violations"]

"""The ``python -m repro.verify`` command-line surface.

Exit codes are the CI contract — 0 iff clean / all trips fired — so the
tests drive :func:`repro.verify.__main__.main` directly and read both
the code and the emitted report.
"""

from __future__ import annotations

import json

import pytest

from repro.verify.__main__ import main

# The cheapest real invariant — no grid cells, no subprocesses — so CLI
# plumbing tests stay fast while still running production checks.
_FAST = ["--only", "obs_merge_conservation"]


def test_list_prints_the_catalogue(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "executor_parity" in out and "resume_accounting" in out


def test_list_json_is_machine_readable(capsys):
    assert main(["--list", "--json"]) == 0
    catalogue = json.loads(capsys.readouterr().out)
    assert {entry["name"] for entry in catalogue} >= {
        "executor_parity", "spend_conservation", "stats_partition",
    }


def test_check_exit_zero_and_report_on_a_clean_invariant(capsys):
    assert main(_FAST) == 0
    assert "[PASS] obs_merge_conservation" in capsys.readouterr().out


def test_check_json_report_shape(capsys):
    assert main([*_FAST, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["status"] == "ok"
    assert report["results"] == [
        {"invariant": "obs_merge_conservation", "status": "ok", "violations": 0}
    ]


def test_selftest_exit_zero_when_the_trip_fires(capsys):
    assert main(["--selftest", *_FAST]) == 0
    assert "[TRIPPED] obs_merge_conservation" in capsys.readouterr().out


def test_study_violations_exit_nonzero(tmp_path, capsys):
    document = {
        "runtime": {
            "cache": {"hits": 1, "misses": 1, "hit_rate": 0.99,
                      "saved_prompt_tokens": 0, "saved_dollars": 0.0},
        }
    }
    (tmp_path / "full_study.json").write_text(json.dumps(document))
    assert main(["--study", str(tmp_path), "--only", "cache_accounting"]) == 1
    out = capsys.readouterr().out
    assert "[FAIL] cache_accounting" in out and "hit_rate" in out


def test_unknown_invariant_name_is_a_configuration_error():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="unknown invariant"):
        main(["--only", "no_such_check"])

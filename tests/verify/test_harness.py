"""The verify harness's own machinery: registry, context, report shapes.

These tests pin the harness *contract* — crashed checks surface as
violations (never as silent passes), absent preconditions report
``skipped``, and the selftest fails when any trip does not fire — using
throwaway invariants so the real catalogue stays untouched.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.verify.harness import (
    Invariant,
    VerifyContext,
    Violation,
    _select,
    all_invariants,
    check_all,
    register,
    render_report,
    render_selftest,
    selftest,
)


def _violation(name: str = "demo") -> Violation:
    return Violation(invariant=name, message="boom", detail={"k": 1})


def test_register_rejects_duplicate_names():
    first = all_invariants()[0]
    with pytest.raises(ConfigurationError, match="already registered"):
        register(first)


def test_select_rejects_unknown_names():
    with pytest.raises(ConfigurationError, match="unknown invariant"):
        _select(["no_such_invariant"])


def test_context_requires_an_existing_study_dir(tmp_path):
    with pytest.raises(ConfigurationError, match="does not exist"):
        VerifyContext(tmp_path / "missing")


def test_context_memoizes_and_cleans_scratch():
    calls = []
    with VerifyContext() as ctx:
        ctx.memoized("k", lambda: calls.append(1))
        ctx.memoized("k", lambda: calls.append(2))
        assert calls == [1]
        scratch = ctx.scratch("one")
        (scratch / "f").write_text("x")
    assert not scratch.exists()


def test_check_all_converts_a_crashed_check_into_a_violation(monkeypatch):
    bad = Invariant(
        name="crasher",
        description="d",
        failure_mode="f",
        check=lambda ctx: 1 / 0,
        trip=lambda ctx: [_violation("crasher")],
    )
    monkeypatch.setattr("repro.verify.harness._REGISTRY", [bad])
    report = check_all()
    assert report["status"] == "violations"
    assert "check crashed: ZeroDivisionError" in report["violations"][0]["message"]
    assert report["results"][0]["status"] == "violated"


def test_check_all_reports_skipped_checks_without_failing(monkeypatch):
    skipper = Invariant(
        name="skipper",
        description="d",
        failure_mode="f",
        check=lambda ctx: None,
        trip=lambda ctx: [_violation("skipper")],
    )
    monkeypatch.setattr("repro.verify.harness._REGISTRY", [skipper])
    report = check_all()
    assert report["status"] == "ok"
    assert report["results"] == [{"invariant": "skipper", "status": "skipped"}]


def test_selftest_fails_when_a_trip_does_not_fire(monkeypatch):
    decorative = Invariant(
        name="decorative",
        description="d",
        failure_mode="f",
        check=lambda ctx: [],
        trip=lambda ctx: [],  # the bug the selftest exists to expose
    )
    monkeypatch.setattr("repro.verify.harness._REGISTRY", [decorative])
    report = selftest()
    assert report["status"] == "not_tripped"
    assert report["results"][0]["tripped"] is False


def test_selftest_fails_when_a_trip_crashes(monkeypatch):
    crasher = Invariant(
        name="trip_crasher",
        description="d",
        failure_mode="f",
        check=lambda ctx: [],
        trip=lambda ctx: 1 / 0,
    )
    monkeypatch.setattr("repro.verify.harness._REGISTRY", [crasher])
    report = selftest()
    assert report["status"] == "not_tripped"
    assert "ZeroDivisionError" in report["results"][0]["error"]


def test_renderers_cover_every_status(monkeypatch):
    ok = Invariant(
        name="fine", description="d", failure_mode="f",
        check=lambda ctx: [], trip=lambda ctx: [_violation("fine")],
    )
    skip = Invariant(
        name="absent", description="d", failure_mode="f",
        check=lambda ctx: None, trip=lambda ctx: [_violation("absent")],
    )
    bad = Invariant(
        name="broken", description="d", failure_mode="f",
        check=lambda ctx: [_violation("broken")],
        trip=lambda ctx: [_violation("broken")],
    )
    monkeypatch.setattr("repro.verify.harness._REGISTRY", [ok, skip, bad])
    text = render_report(check_all())
    assert "[PASS] fine" in text and "[SKIP] absent" in text
    assert "[FAIL] broken" in text and "!! broken: boom" in text
    self_text = render_selftest(selftest())
    assert "[TRIPPED] fine" in self_text

"""Tests for the evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval.metrics import confusion, f1_score, macro_mean, precision_recall_f1


class TestConfusion:
    def test_counts(self):
        labels = np.array([1, 1, 0, 0, 1])
        preds = np.array([1, 0, 0, 1, 1])
        counts = confusion(labels, preds)
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (2, 1, 1, 1)
        assert counts.n == 5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ReproError):
            confusion(np.array([1, 0]), np.array([1]))

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            confusion(np.array([]), np.array([]))

    def test_non_binary_raises(self):
        with pytest.raises(ReproError):
            confusion(np.array([0, 2]), np.array([0, 1]))


class TestF1:
    def test_perfect(self):
        labels = np.array([1, 0, 1])
        assert f1_score(labels, labels) == 100.0

    def test_all_wrong(self):
        assert f1_score(np.array([1, 0]), np.array([0, 1])) == 0.0

    def test_known_value(self):
        labels = np.array([1, 1, 1, 0, 0, 0, 0])
        preds = np.array([1, 1, 0, 1, 0, 0, 0])
        precision, recall, f1 = precision_recall_f1(labels, preds)
        assert precision == pytest.approx(100 * 2 / 3)
        assert recall == pytest.approx(100 * 2 / 3)
        assert f1 == pytest.approx(100 * 2 / 3)

    def test_all_negative_prediction_zero_f1(self):
        labels = np.array([1, 1, 0, 0])
        assert f1_score(labels, np.zeros(4, dtype=int)) == 0.0

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=60)
    )
    @settings(max_examples=50)
    def test_f1_bounded_and_harmonic(self, rows):
        labels = np.array([r[0] for r in rows])
        preds = np.array([r[1] for r in rows])
        precision, recall, f1 = precision_recall_f1(labels, preds)
        assert 0.0 <= f1 <= 100.0
        assert f1 <= max(precision, recall) + 1e-9
        assert f1 >= min(precision, recall) - 1e-9 or f1 == 0.0


class TestMacroMean:
    def test_equal_weighting(self):
        assert macro_mean({"A": 80.0, "B": 20.0}) == 50.0

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            macro_mean({})

"""Tests for the leave-one-dataset-out runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import StudyConfig
from repro.errors import ReproError
from repro.eval.loo import LeaveOneOutRunner
from repro.matchers import Matcher, StringSimMatcher


class _SpyMatcher(Matcher):
    """Records what it is fitted on; predicts all zeros."""

    name = "spy"
    display_name = "Spy"
    requires_fit = True

    def __init__(self):
        super().__init__()
        self.fitted_on: list[str] = []

    def _fit(self, transfer, config, seed):
        self.fitted_on = [ds.name for ds in transfer]

    def _predict(self, pairs, serialization_seed):
        return np.zeros(len(pairs), dtype=np.int64)


@pytest.fixture
def runner(small_datasets, tiny_config):
    return LeaveOneOutRunner(small_datasets, tiny_config, codes=("ABT", "DBAC", "BEER"))


class TestProtocol:
    def test_target_excluded_from_transfer(self, runner):
        spy = _SpyMatcher()
        runner.run_target(lambda code: spy, "DBAC")
        assert "DBAC" not in spy.fitted_on
        assert set(spy.fitted_on) == {"ABT", "BEER"}

    def test_test_set_identical_across_matchers(self, runner):
        a = runner.test_set("ABT")
        b = runner.test_set("ABT")
        assert [p.pair_id for p in a] == [p.pair_id for p in b]

    def test_test_set_memoized_per_code(self, runner):
        # Not merely an equal resample: all baselines share one object.
        assert runner.test_set("ABT") is runner.test_set("ABT")
        assert runner.test_set("ABT") is not runner.test_set("BEER")

    def test_run_with_executor_matches_serial(self, runner):
        from repro.runtime.executor import ThreadStudyExecutor

        serial = runner.run(lambda code: StringSimMatcher(), "StringSim")
        with ThreadStudyExecutor(2) as executor:
            threaded = runner.run(
                lambda code: StringSimMatcher(), "StringSim", executor=executor
            )
        assert list(threaded.per_dataset) == list(serial.per_dataset)
        assert threaded.dataset_means() == serial.dataset_means()

    def test_test_cap_applied(self, small_datasets, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, test_cap=10, test_fraction=1.0)
        runner = LeaveOneOutRunner(small_datasets, config)
        assert len(runner.test_set("ABT")) <= 10

    def test_one_score_per_seed(self, runner, tiny_config):
        result = runner.run_target(lambda code: StringSimMatcher(), "ABT")
        assert len(result.scores) == len(tiny_config.seeds)
        assert [s.seed for s in result.scores] == list(tiny_config.seeds)

    def test_full_run_covers_all_targets(self, runner):
        result = runner.run(lambda code: StringSimMatcher(), "StringSim")
        assert set(result.per_dataset) == {"ABT", "DBAC", "BEER"}

    def test_seen_datasets_marked(self, runner):
        result = runner.run(
            lambda code: StringSimMatcher(), "X", seen_datasets=frozenset({"DBAC"})
        )
        assert result.per_dataset["DBAC"].seen_in_training
        assert not result.per_dataset["ABT"].seen_in_training

    def test_mean_and_std(self, runner):
        result = runner.run_target(lambda code: StringSimMatcher(), "ABT")
        values = [s.f1 for s in result.scores]
        assert result.mean_f1 == pytest.approx(np.mean(values))
        assert result.std_f1 == pytest.approx(np.std(values, ddof=1))

    def test_single_seed_std_zero(self, small_datasets, tiny_config):
        config = tiny_config.with_seeds((0,))
        runner = LeaveOneOutRunner(small_datasets, config)
        result = runner.run_target(lambda code: StringSimMatcher(), "ABT")
        assert result.std_f1 == 0.0

    def test_missing_dataset_raises(self, small_datasets, tiny_config):
        with pytest.raises(ReproError):
            LeaveOneOutRunner(small_datasets, tiny_config, codes=("ABT", "WDC"))

    def test_empty_datasets_raise(self, tiny_config):
        with pytest.raises(ReproError):
            LeaveOneOutRunner({}, tiny_config)

    def test_study_result_macro_mean(self, runner):
        result = runner.run(lambda code: StringSimMatcher(), "StringSim")
        expected = np.mean([r.mean_f1 for r in result.per_dataset.values()])
        assert result.mean_f1 == pytest.approx(expected)

"""Tests for the table renderers."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.eval.loo import SeedScore, StudyResult, TargetResult
from repro.eval.reporting import format_cell, format_rows, format_table3


def _result(name: str, seen: bool = False) -> StudyResult:
    result = StudyResult(matcher_name=name, params_millions=110)
    for code, f1 in (("ABT", 70.0), ("DBAC", 90.0)):
        target = TargetResult(dataset=code, seen_in_training=seen and code == "DBAC")
        target.scores = [SeedScore(0, f1, f1, f1), SeedScore(1, f1 + 2, f1, f1)]
        result.per_dataset[code] = target
    return result


class TestFormatCell:
    def test_plain(self):
        assert format_cell(79.25, 2.8) == "79.2±2.8"

    def test_bracketed(self):
        assert format_cell(97.7, 0.6, bracketed=True) == "(97.7±0.6)"


class TestFormatTable3:
    def test_contains_all_rows_and_means(self):
        text = format_table3([_result("Ditto"), _result("Unicorn")], codes=("ABT", "DBAC"))
        assert "Ditto" in text and "Unicorn" in text
        assert "71.0" in text  # per-dataset mean of 70 and 72
        assert "Mean" in text

    def test_bracketed_seen_cells(self):
        text = format_table3([_result("Jellyfish", seen=True)], codes=("ABT", "DBAC"))
        assert "(91.0±1.4)" in text

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            format_table3([])


class TestFormatRows:
    def test_alignment_and_content(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        text = format_rows(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("a")
        assert "222" in text

    def test_missing_column_blank(self):
        text = format_rows([{"a": 1}], ["a", "b"])
        assert text

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            format_rows([], ["a"])

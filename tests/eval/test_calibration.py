"""Tests for threshold calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval.calibration import (
    best_f1_threshold,
    confidence_band,
    precision_recall_curve,
)
from repro.eval.metrics import f1_score


class TestCurve:
    def test_perfect_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        best = best_f1_threshold(labels, scores)
        assert best.f1 == 100.0
        assert 0.2 < best.threshold <= 0.8

    def test_recall_monotone_down_the_curve(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=50)
        scores = rng.random(50)
        points = precision_recall_curve(labels, scores)
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls)  # descending threshold -> recall grows

    def test_last_point_full_recall(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.6, 0.3, 0.1])
        points = precision_recall_curve(labels, scores)
        assert points[-1].recall == 100.0

    def test_duplicate_scores_collapse(self):
        labels = np.array([1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5])
        points = precision_recall_curve(labels, scores)
        assert len(points) == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            precision_recall_curve(np.array([0, 0]), np.array([0.1, 0.2]))
        with pytest.raises(ReproError):
            precision_recall_curve(np.array([]), np.array([]))
        with pytest.raises(ReproError):
            precision_recall_curve(np.array([1]), np.array([0.5, 0.6]))

    def test_degenerate_inputs_raise_structured_errors(self):
        """Every degenerate shape fails loudly, never as a numpy warning."""
        with pytest.raises(ReproError, match="empty"):
            precision_recall_curve(np.array([]), np.array([]))
        with pytest.raises(ReproError, match="at least one positive"):
            precision_recall_curve(np.array([0, 0, 0]), np.array([0.1, 0.2, 0.3]))
        with pytest.raises(ReproError, match="at least one negative"):
            precision_recall_curve(np.array([1, 1, 1]), np.array([0.1, 0.2, 0.3]))
        with pytest.raises(ReproError, match="binary"):
            precision_recall_curve(np.array([0, 2, 1]), np.array([0.1, 0.2, 0.3]))
        with pytest.raises(ReproError, match="non-finite"):
            precision_recall_curve(
                np.array([0, 1, 1]), np.array([0.1, np.nan, 0.3])
            )
        with pytest.raises(ReproError, match="shapes"):
            best_f1_threshold(np.array([0, 1]), np.array([0.1, 0.2, 0.3]))


class TestBestThreshold:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_best_beats_default_threshold(self, seed):
        """The calibrated threshold never loses to the fixed 0.5 cut."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=60)
        if labels.sum() == 0:
            labels[0] = 1
        scores = np.clip(labels * 0.35 + rng.random(60) * 0.6, 0, 1)
        best = best_f1_threshold(labels, scores)
        default_f1 = f1_score(labels, (scores > 0.5).astype(int))
        assert best.f1 >= default_f1 - 1e-9

    def test_on_matcher_scores(self, abt_dataset):
        from repro.data import get_spec
        from repro.matchers import ZeroERMatcher

        matcher = ZeroERMatcher(get_spec("ABT").attribute_kinds)
        scores = matcher.match_scores(list(abt_dataset.pairs))
        best = best_f1_threshold(abt_dataset.labels(), scores)
        assert 0.0 <= best.threshold <= 1.0
        assert best.f1 > 0.0


class TestConfidenceBand:
    def test_separable_scores_yield_tight_band(self):
        labels = np.array([1, 1, 1, 0, 0, 0])
        scores = np.array([0.9, 0.85, 0.8, 0.2, 0.15, 0.1])
        low, high = confidence_band(labels, scores, min_purity=1.0)
        assert low < high
        # Every decided side is pure on this data.
        assert (labels[scores >= high] == 1).all()
        assert (labels[scores <= low] == 0).all()

    def test_band_widens_with_purity(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=200)
        scores = np.clip(labels * 0.3 + rng.random(200) * 0.7, 0, 1)
        low90, high90 = confidence_band(labels, scores, min_purity=0.90)
        low99, high99 = confidence_band(labels, scores, min_purity=0.99)
        assert high99 >= high90
        assert low99 <= low90

    def test_uncalibratable_side_pins_to_edge(self):
        # Positives and negatives fully interleaved: no descending cut
        # is pure, so the match side must pin to 1.0 (escalate all).
        labels = np.array([1, 0, 1, 0, 1, 0])
        scores = np.array([0.9, 0.9, 0.6, 0.6, 0.3, 0.3])
        low, high = confidence_band(labels, scores, min_purity=1.0)
        assert high == 1.0
        assert low < high

    def test_band_always_valid_interval(self):
        # A perfect scorer: both sides calibrate at the same cut; the
        # band must still come back as a valid low < high interval.
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        low, high = confidence_band(labels, scores, min_purity=0.5)
        assert 0.0 <= low < high <= 1.0

    def test_validation(self):
        with pytest.raises(ReproError, match="min_purity"):
            confidence_band(np.array([0, 1]), np.array([0.1, 0.9]), min_purity=0.0)
        with pytest.raises(ReproError, match="at least one positive"):
            confidence_band(np.array([0, 0]), np.array([0.1, 0.9]))

"""Tests for threshold calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval.calibration import best_f1_threshold, precision_recall_curve
from repro.eval.metrics import f1_score


class TestCurve:
    def test_perfect_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        best = best_f1_threshold(labels, scores)
        assert best.f1 == 100.0
        assert 0.2 < best.threshold <= 0.8

    def test_recall_monotone_down_the_curve(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=50)
        scores = rng.random(50)
        points = precision_recall_curve(labels, scores)
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls)  # descending threshold -> recall grows

    def test_last_point_full_recall(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.6, 0.3, 0.1])
        points = precision_recall_curve(labels, scores)
        assert points[-1].recall == 100.0

    def test_duplicate_scores_collapse(self):
        labels = np.array([1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5])
        points = precision_recall_curve(labels, scores)
        assert len(points) == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            precision_recall_curve(np.array([0, 0]), np.array([0.1, 0.2]))
        with pytest.raises(ReproError):
            precision_recall_curve(np.array([]), np.array([]))
        with pytest.raises(ReproError):
            precision_recall_curve(np.array([1]), np.array([0.5, 0.6]))


class TestBestThreshold:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_best_beats_default_threshold(self, seed):
        """The calibrated threshold never loses to the fixed 0.5 cut."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=60)
        if labels.sum() == 0:
            labels[0] = 1
        scores = np.clip(labels * 0.35 + rng.random(60) * 0.6, 0, 1)
        best = best_f1_threshold(labels, scores)
        default_f1 = f1_score(labels, (scores > 0.5).astype(int))
        assert best.f1 >= default_f1 - 1e-9

    def test_on_matcher_scores(self, abt_dataset):
        from repro.data import get_spec
        from repro.matchers import ZeroERMatcher

        matcher = ZeroERMatcher(get_spec("ABT").attribute_kinds)
        scores = matcher.match_scores(list(abt_dataset.pairs))
        best = best_f1_threshold(abt_dataset.labels(), scores)
        assert 0.0 <= best.threshold <= 1.0
        assert best.f1 > 0.0

"""Tests for study-result persistence."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.eval.loo import SeedScore, StudyResult, TargetResult
from repro.eval.persistence import load_results, results_from_dict, save_results


def _results() -> list[StudyResult]:
    result = StudyResult(matcher_name="Ditto", params_millions=110)
    for code, seen in (("ABT", False), ("DBAC", True)):
        target = TargetResult(dataset=code, seen_in_training=seen)
        target.scores = [SeedScore(0, 70.0, 68.0, 72.0), SeedScore(1, 71.0, 69.0, 73.0)]
        result.per_dataset[code] = target
    return [result]


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        original = _results()
        path = tmp_path / "nested" / "results.json"
        save_results(original, path)
        loaded = load_results(path)
        assert loaded[0].matcher_name == "Ditto"
        assert loaded[0].per_dataset["DBAC"].seen_in_training
        assert loaded[0].per_dataset["ABT"].scores[1].f1 == 71.0
        assert loaded[0].mean_f1 == pytest.approx(original[0].mean_f1)

    def test_rendering_survives_roundtrip(self, tmp_path):
        from repro.eval.reporting import format_table3

        path = tmp_path / "r.json"
        save_results(_results(), path)
        text = format_table3(load_results(path), codes=("ABT", "DBAC"))
        assert "Ditto" in text and "(" in text  # bracketed seen cell

    def test_unknown_format_rejected(self):
        with pytest.raises(ReproError):
            results_from_dict({"format_version": 99, "results": []})

"""Tests for the bootstrap confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.eval.bootstrap import bootstrap_f1, paired_bootstrap_difference


@pytest.fixture
def scored_pairs(rng):
    labels = rng.integers(0, 2, size=200)
    good = labels.copy()
    flip = rng.random(200) < 0.1
    good[flip] = 1 - good[flip]
    bad = labels.copy()
    flip = rng.random(200) < 0.4
    bad[flip] = 1 - bad[flip]
    return labels, good, bad


class TestBootstrapF1:
    def test_interval_contains_point(self, scored_pairs):
        labels, good, _bad = scored_pairs
        interval = bootstrap_f1(labels, good, n_resamples=300)
        assert interval.lower <= interval.point <= interval.upper

    def test_perfect_predictions_tight_at_100(self, scored_pairs):
        labels, _good, _bad = scored_pairs
        interval = bootstrap_f1(labels, labels, n_resamples=200)
        assert interval.point == 100.0
        assert interval.lower == interval.upper == 100.0

    def test_wider_interval_for_smaller_sets(self, rng):
        labels = rng.integers(0, 2, size=400)
        predictions = labels.copy()
        flip = rng.random(400) < 0.2
        predictions[flip] = 1 - predictions[flip]
        wide = bootstrap_f1(labels[:40], predictions[:40], n_resamples=400)
        narrow = bootstrap_f1(labels, predictions, n_resamples=400)
        assert wide.width > narrow.width

    def test_deterministic_given_seed(self, scored_pairs):
        labels, good, _bad = scored_pairs
        a = bootstrap_f1(labels, good, seed=5)
        b = bootstrap_f1(labels, good, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ReproError):
            bootstrap_f1(np.array([1, 0]), np.array([1]))
        with pytest.raises(ReproError):
            bootstrap_f1(np.array([1, 0]), np.array([1, 0]), confidence=0.3)


class TestPairedDifference:
    def test_detects_clear_gap(self, scored_pairs):
        labels, good, bad = scored_pairs
        interval = paired_bootstrap_difference(labels, good, bad, n_resamples=400)
        assert interval.point > 0
        assert interval.lower > 0, "clear quality gap should exclude zero"

    def test_no_difference_includes_zero(self, scored_pairs):
        labels, good, _bad = scored_pairs
        interval = paired_bootstrap_difference(labels, good, good, n_resamples=200)
        assert interval.contains(0.0)

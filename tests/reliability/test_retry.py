"""RetryingClient: sleep-free backoff timing, exhaustion chaining, deadlines."""

from __future__ import annotations

import pytest

from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    MalformedCompletionError,
    RateLimitError,
    RetryExhaustedError,
    TransientLLMError,
)
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.reliability import (
    FakeClock,
    RetryPolicy,
    RetryingClient,
    counters,
    validate_yes_no,
)

_PROMPT = "Do the two entries match? Answer with 'Yes' if they do."


class ScriptedClient(LLMClient):
    """Raises (or returns) each scripted outcome in order, then answers."""

    model_name = "scripted"

    def __init__(self, outcomes, answer: str = "No") -> None:
        self.outcomes = list(outcomes)
        self.answer = answer
        self.calls = 0

    def complete(self, request: LLMRequest) -> LLMResponse:
        self.calls += 1
        if self.outcomes:
            outcome = self.outcomes.pop(0)
            if isinstance(outcome, BaseException):
                raise outcome
            return LLMResponse(outcome, self.model_name, 1, 1)
        return LLMResponse(self.answer, self.model_name, 1, 1)


def _request() -> LLMRequest:
    return LLMRequest(prompt=_PROMPT)


class TestBackoffTiming:
    def test_exact_sleep_sequence_without_jitter(self):
        """Two failures → sleeps of exactly [base, base*multiplier]."""
        clock = FakeClock()
        inner = ScriptedClient([TransientLLMError("a"), TransientLLMError("b")])
        client = RetryingClient(
            inner,
            RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=5.0,
                        jitter=0.0),
            clock=clock, count=False,
        )
        response = client.complete(_request())
        assert response.text == "No"
        assert inner.calls == 3
        assert clock.sleeps == [0.1, 0.2]

    def test_jittered_sleeps_match_the_policy_exactly(self):
        """The slept schedule is the policy's deterministic one, keyed on
        the prompt — re-running the request replays identical sleeps."""
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, seed=11)
        expected = [policy.backoff_delay(n, key=_PROMPT) for n in (1, 2)]

        clock = FakeClock()
        errors = [TransientLLMError("a"), TransientLLMError("b")]
        client = RetryingClient(ScriptedClient(list(errors)), policy,
                                clock=clock, count=False)
        client.complete(_request())
        assert clock.sleeps == expected

        replay = FakeClock()
        client = RetryingClient(ScriptedClient(list(errors)), policy,
                                clock=replay, count=False)
        client.complete(_request())
        assert replay.sleeps == expected

    def test_rate_limit_hint_floors_the_sleep(self):
        clock = FakeClock()
        inner = ScriptedClient([RateLimitError("throttled", retry_after_s=0.7)])
        client = RetryingClient(
            inner, RetryPolicy(base_delay_s=0.01, max_delay_s=0.05, jitter=0.0),
            clock=clock, count=False,
        )
        client.complete(_request())
        assert clock.sleeps == [0.7]


class TestExhaustionAndClassification:
    def test_exhaustion_chains_the_last_error(self):
        last = TransientLLMError("third strike")
        inner = ScriptedClient(
            [TransientLLMError("one"), TransientLLMError("two"), last]
        )
        client = RetryingClient(
            inner, RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            clock=FakeClock(), count=False,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.complete(_request())
        assert excinfo.value.__cause__ is last
        assert "third strike" in str(excinfo.value)
        assert inner.calls == 3

    def test_terminal_error_propagates_immediately(self):
        inner = ScriptedClient([BudgetExceededError("budget")])
        client = RetryingClient(inner, RetryPolicy(), clock=FakeClock(),
                                count=False)
        with pytest.raises(BudgetExceededError):
            client.complete(_request())
        assert inner.calls == 1

    def test_max_attempts_one_disables_retries(self):
        inner = ScriptedClient([TransientLLMError("blip")])
        client = RetryingClient(
            inner, RetryPolicy().without_retries(), clock=FakeClock(),
            count=False,
        )
        with pytest.raises(RetryExhaustedError):
            client.complete(_request())
        assert inner.calls == 1


class TestValidation:
    def test_malformed_completion_is_resampled(self):
        inner = ScriptedClient(["%% garbage %%"], answer="Yes")
        client = RetryingClient(
            inner, RetryPolicy(base_delay_s=0.0, jitter=0.0),
            clock=FakeClock(), validate=validate_yes_no, count=False,
        )
        assert client.complete(_request()).text == "Yes"
        assert inner.calls == 2

    def test_validate_yes_no_raises_malformed(self):
        with pytest.raises(MalformedCompletionError):
            validate_yes_no(LLMResponse("%% garbage %%", "m", 1, 1))
        validate_yes_no(LLMResponse("Yes", "m", 1, 1))  # clean passes


class TestDeadlines:
    def test_deadline_expired_before_attempt(self):
        clock = FakeClock()
        clock.advance(10.0)

        class SlowClient(LLMClient):
            model_name = "slow"

            def complete(self, request):
                clock.advance(2.0)  # the attempt itself overruns
                raise TransientLLMError("timeout-ish")

        client = RetryingClient(
            SlowClient(), RetryPolicy(base_delay_s=0.0, jitter=0.0),
            clock=clock, count=False,
        )
        with pytest.raises(DeadlineExceededError) as excinfo:
            client.complete(LLMRequest(prompt=_PROMPT, timeout_s=1.5))
        assert isinstance(excinfo.value.__cause__, TransientLLMError)

    def test_backoff_that_cannot_fit_fails_early(self):
        clock = FakeClock()
        inner = ScriptedClient([TransientLLMError("a")])
        client = RetryingClient(
            inner, RetryPolicy(base_delay_s=5.0, jitter=0.0),
            clock=clock, count=False,
        )
        with pytest.raises(DeadlineExceededError):
            client.complete(LLMRequest(prompt=_PROMPT, timeout_s=1.0))
        assert clock.sleeps == []  # never slept into the deadline
        assert inner.calls == 1

    def test_policy_default_timeout_applies(self):
        clock = FakeClock()
        client = RetryingClient(
            ScriptedClient([TransientLLMError("a")]),
            RetryPolicy(base_delay_s=5.0, jitter=0.0, default_timeout_s=1.0),
            clock=clock, count=False,
        )
        with pytest.raises(DeadlineExceededError):
            client.complete(_request())


class TestBatchIntegration:
    def test_batch_process_absorbs_transient_failures(self):
        """BatchJob.process(retry_policy=...) retries instead of recording
        the first failure as the request's final outcome."""
        from repro.llm.batching import BatchJob

        flaky = ScriptedClient([TransientLLMError("blip")], answer="No")
        job = BatchJob(client=flaky)
        job.submit(_PROMPT)
        job.process(retry_policy=RetryPolicy(base_delay_s=0.0, jitter=0.0))
        assert job.n_failed == 0
        assert flaky.calls == 2

    def test_batch_process_without_policy_records_the_failure(self):
        from repro.llm.batching import BatchJob

        flaky = ScriptedClient([TransientLLMError("blip")], answer="No")
        job = BatchJob(client=flaky)
        job.submit(_PROMPT)
        job.process()
        assert job.n_failed == 1
        assert flaky.calls == 1


class TestCounters:
    def test_retries_are_counted_process_wide(self):
        before = counters.snapshot()
        client = RetryingClient(
            ScriptedClient([TransientLLMError("a")]),
            RetryPolicy(base_delay_s=0.25, jitter=0.0), clock=FakeClock(),
        )
        client.complete(_request())
        delta = counters.delta_since(before)
        assert delta["attempts"] == 2
        assert delta["request_retries"] == 1
        assert delta["retry_sleep_seconds"] == pytest.approx(0.25)

    def test_count_false_stays_silent(self):
        before = counters.snapshot()
        client = RetryingClient(
            ScriptedClient([TransientLLMError("a")]),
            RetryPolicy(base_delay_s=0.0, jitter=0.0), clock=FakeClock(),
            count=False,
        )
        client.complete(_request())
        delta = counters.delta_since(before)
        assert delta["attempts"] == 0
        assert delta["request_retries"] == 0

"""Tests for HedgedCall: delay derivation, inline race, threaded race."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError, TransientLLMError
from repro.reliability import counters
from repro.reliability.clock import FakeClock, SystemClock
from repro.reliability.hedge import HedgedCall


def _inline(**kwargs) -> tuple[HedgedCall, FakeClock]:
    clock = FakeClock()
    defaults = dict(hedge_delay_s=1.0, clock=clock, count=False)
    defaults.update(kwargs)
    return HedgedCall(**defaults), clock


def _sleeper(clock: FakeClock, durations: list[float], results: list):
    """An attempt that sleeps ``durations[index]`` then answers."""

    def attempt(index: int, _cancel: threading.Event):
        clock.sleep(durations[index])
        return results[index]

    return attempt


class TestValidation:
    def test_bad_config_is_rejected(self):
        with pytest.raises(ConfigurationError):
            HedgedCall(hedge_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            HedgedCall(quantile=1.0)
        with pytest.raises(ConfigurationError):
            HedgedCall(min_delay_s=0.0)


class TestDelay:
    def test_configured_delay_wins(self):
        hedge, _clock = _inline(hedge_delay_s=0.25)
        assert hedge.delay() == 0.25

    def test_empty_window_falls_back_to_min_delay(self):
        hedge, _clock = _inline(hedge_delay_s=None, min_delay_s=0.002)
        assert hedge.delay() == 0.002

    def test_derived_delay_is_the_window_quantile(self):
        hedge, clock = _inline(hedge_delay_s=None, quantile=0.95)
        for latency in [0.010] * 19 + [0.500]:
            hedge.call(_sleeper(clock, [latency, latency], ["a", "a"]))
        # Nearest-rank p95 over 20 observations (rank 18 of 0..19)
        # lands on the common latency, not the lone straggler.
        assert hedge.delay() == pytest.approx(0.010)
        assert hedge.delay() >= hedge.min_delay_s


class TestInlineRace:
    def test_fast_primary_never_hedges(self):
        hedge, clock = _inline(hedge_delay_s=1.0)
        result = hedge.call(_sleeper(clock, [0.5, 0.0], ["primary", "hedge"]))
        assert result == "primary"
        assert hedge.counters["hedges_launched"] == 0

    def test_straggling_primary_hedges_and_loses_the_waste(self):
        # Primary takes 3s; hedge starts at 1s and takes 2.5s, so it
        # would finish at 3.5s — the primary still wins, hedge is waste.
        hedge, clock = _inline(hedge_delay_s=1.0)
        result = hedge.call(_sleeper(clock, [3.0, 2.5], ["primary", "hedge"]))
        assert result == "primary"
        assert hedge.counters["hedges_launched"] == 1
        assert hedge.counters["hedge_waste"] == 1
        assert hedge.counters["hedge_wins"] == 0

    def test_straggling_primary_loses_to_the_hedge(self):
        # Primary takes 3s; hedge starts at 1s and takes 0.5s -> 1.5s.
        hedge, clock = _inline(hedge_delay_s=1.0)
        result = hedge.call(_sleeper(clock, [3.0, 0.5], ["primary", "hedge"]))
        assert result == "hedge"
        assert hedge.counters["hedge_wins"] == 1
        assert hedge.counters["hedge_waste"] == 0

    def test_failed_primary_is_backed_up_by_the_hedge(self):
        hedge, clock = _inline(hedge_delay_s=1.0)

        def attempt(index, _cancel):
            if index == 0:
                raise TransientLLMError("primary died")
            clock.sleep(0.1)
            return "hedge"

        assert hedge.call(attempt) == "hedge"
        assert hedge.counters["hedge_wins"] == 1

    def test_both_attempts_failing_raises_the_last_error(self):
        hedge, _clock = _inline()

        def attempt(index, _cancel):
            raise TransientLLMError(f"attempt {index} died")

        with pytest.raises(TransientLLMError, match="attempt 1"):
            hedge.call(attempt)
        assert hedge.counters["failures"] == 1

    def test_inline_race_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            hedge, clock = _inline(hedge_delay_s=1.0)
            hedge.call(_sleeper(clock, [3.0, 0.5], ["p", "h"]))
            hedge.call(_sleeper(clock, [0.2, 0.0], ["p", "h"]))
            outcomes.append(dict(hedge.counters))
        assert outcomes[0] == outcomes[1]


class TestThreadedRace:
    def test_fast_primary_wins_without_hedging(self):
        hedge = HedgedCall(hedge_delay_s=5.0, count=False)
        result = hedge.call(lambda _i, _c: "primary")
        assert result == "primary"
        assert hedge.counters["hedges_launched"] == 0

    def test_straggler_is_beaten_by_the_hedge(self):
        hedge = HedgedCall(hedge_delay_s=0.02, count=False)
        release = threading.Event()

        def attempt(index, _cancel):
            if index == 0:
                release.wait(5.0)  # the straggler
                return "primary"
            return "hedge"

        try:
            assert hedge.call(attempt) == "hedge"
            assert hedge.counters["hedge_wins"] == 1
        finally:
            release.set()

    def test_loser_receives_the_cancel_signal(self):
        hedge = HedgedCall(hedge_delay_s=0.02, count=False)
        cancelled = threading.Event()

        def attempt(index, cancel):
            if index == 0:
                cancel.wait(5.0)
                cancelled.set()
                return "primary"
            return "hedge"

        assert hedge.call(attempt) == "hedge"
        assert cancelled.wait(5.0)

    def test_failed_primary_falls_back_to_hedge(self):
        hedge = HedgedCall(hedge_delay_s=5.0, count=False)

        def attempt(index, _cancel):
            if index == 0:
                raise TransientLLMError("primary died")
            return "hedge"

        assert hedge.call(attempt) == "hedge"

    def test_every_attempt_failing_raises(self):
        hedge = HedgedCall(hedge_delay_s=0.01, count=False)

        def attempt(index, _cancel):
            raise TransientLLMError(f"attempt {index} died")

        with pytest.raises(TransientLLMError):
            hedge.call(attempt)
        assert hedge.counters["failures"] == 1


class TestAccounting:
    def test_global_counters_mirror(self):
        before = counters.snapshot()
        hedge, clock = _inline(count=True)
        hedge.call(_sleeper(clock, [3.0, 0.5], ["p", "h"]))
        delta = counters.delta_since(before)
        assert delta["hedges_launched"] == 1
        assert delta["hedge_wins"] == 1

    def test_as_dict_shape(self):
        hedge, clock = _inline()
        hedge.call(_sleeper(clock, [0.1, 0.0], ["p", "h"]))
        state = hedge.as_dict()
        assert state["counters"]["calls"] == 1
        assert state["delay_s"] == 1.0

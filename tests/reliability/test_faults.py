"""FaultInjector: determinism, the bounded adversary, fault shapes."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    MalformedCompletionError,
    PromptError,
    RateLimitError,
    TransientLLMError,
)
from repro.llm.client import EchoClient, LLMRequest
from repro.llm.prompts import parse_answer
from repro.reliability import (
    FakeClock,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    RetryingClient,
    validate_yes_no,
)
from repro.reliability import faults
from repro.reliability.faults import MALFORMED_TEXT

_PROMPTS = [f"Do entries A{i} and B{i} match? ('Yes'/'No')" for i in range(40)]


def _outcome(injector: FaultInjector, prompt: str) -> str:
    """One attempt's outcome tag for determinism comparisons."""
    try:
        response = injector.complete(LLMRequest(prompt=prompt))
    except RateLimitError:
        return "rate_limit"
    except TransientLLMError:
        return "transient"
    return "malformed" if response.text == MALFORMED_TEXT else "clean"


def _plan(**overrides) -> FaultPlan:
    defaults = dict(transient_rate=0.2, rate_limit_rate=0.1,
                    malformed_rate=0.1, retry_after_s=0.0, seed=5)
    defaults.update(overrides)
    return FaultPlan(**defaults)


class TestDeterminism:
    def test_fault_sequence_is_independent_of_request_order(self):
        """Per-prompt outcomes depend on (seed, prompt, attempt) only —
        interleaving requests differently must not move any fault."""
        forward = FaultInjector(EchoClient(), _plan(), count=False)
        ordered = {p: [_outcome(forward, p) for _ in range(3)] for p in _PROMPTS}

        shuffled = FaultInjector(EchoClient(), _plan(), count=False)
        interleaved: dict[str, list[str]] = {p: [] for p in _PROMPTS}
        for attempt in range(3):  # round-robin instead of depth-first
            for p in reversed(_PROMPTS):
                interleaved[p].append(_outcome(shuffled, p))
        assert interleaved == ordered

    def test_fresh_injector_replays_identically(self):
        a = FaultInjector(EchoClient(), _plan(), count=False)
        b = FaultInjector(EchoClient(), _plan(), count=False)
        for p in _PROMPTS:
            assert [_outcome(a, p)] * 1 == [_outcome(b, p)]

    def test_seed_changes_the_sequence(self):
        a = FaultInjector(EchoClient(), _plan(seed=5), count=False)
        b = FaultInjector(EchoClient(), _plan(seed=6), count=False)
        assert [_outcome(a, p) for p in _PROMPTS] != [
            _outcome(b, p) for p in _PROMPTS
        ]


class TestBoundedAdversary:
    def test_consecutive_errors_capped_then_clean(self):
        plan = _plan(transient_rate=1.0, rate_limit_rate=0.0,
                     malformed_rate=0.0, max_consecutive=3)
        injector = FaultInjector(EchoClient("No"), plan, count=False)
        request = LLMRequest(prompt=_PROMPTS[0])
        for _ in range(3):
            with pytest.raises(TransientLLMError):
                injector.complete(request)
        assert injector.complete(request).text == "No"  # the cap kicks in
        with pytest.raises(TransientLLMError):  # and the run restarts
            injector.complete(request)

    def test_default_policy_always_outlasts_default_adversary(self):
        """max_attempts (4) > max_consecutive (3): retries always converge,
        even at 100% error rate."""
        plan = _plan(transient_rate=0.8, rate_limit_rate=0.1,
                     malformed_rate=0.1)
        client = RetryingClient(
            FaultInjector(EchoClient("Yes"), plan, count=False),
            RetryPolicy(base_delay_s=0.0, jitter=0.0),
            clock=FakeClock(), validate=validate_yes_no, count=False,
        )
        for p in _PROMPTS:
            assert client.complete(LLMRequest(prompt=p)).text == "Yes"


class TestFaultShapes:
    def test_rate_limit_carries_the_hint(self):
        plan = _plan(transient_rate=0.0, rate_limit_rate=1.0,
                     malformed_rate=0.0, retry_after_s=0.25)
        injector = FaultInjector(EchoClient(), plan, count=False)
        with pytest.raises(RateLimitError) as excinfo:
            injector.complete(LLMRequest(prompt=_PROMPTS[0]))
        assert excinfo.value.retry_after_s == 0.25

    def test_malformed_text_fails_yes_no_parsing(self):
        with pytest.raises(PromptError):
            parse_answer(MALFORMED_TEXT)
        plan = _plan(transient_rate=0.0, rate_limit_rate=0.0,
                     malformed_rate=1.0)
        injector = FaultInjector(EchoClient("Yes"), plan, count=False)
        response = injector.complete(LLMRequest(prompt=_PROMPTS[0]))
        assert response.text == MALFORMED_TEXT
        with pytest.raises(MalformedCompletionError):
            validate_yes_no(response)

    def test_latency_spike_sleeps_but_succeeds(self):
        clock = FakeClock()
        plan = FaultPlan(latency_rate=1.0, latency_s=0.3, seed=1)
        injector = FaultInjector(EchoClient("No"), plan, clock=clock,
                                 count=False)
        assert injector.complete(LLMRequest(prompt=_PROMPTS[0])).text == "No"
        assert clock.sleeps == [0.3]


class TestPlanSpecs:
    def test_round_trip(self):
        plan = FaultPlan(transient_rate=0.2, rate_limit_rate=0.05,
                         latency_rate=0.1, malformed_rate=0.05,
                         latency_s=0.02, retry_after_s=0.1, seed=3,
                         max_consecutive=2)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_rate=0.6, malformed_rate=0.6)  # sums past 1
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(max_consecutive=0)
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("transient=0.2,nonsense=1")


class TestCrashPoint:
    """Deterministic crash-at-Nth-completion and torn-write fault modes."""

    @pytest.fixture(autouse=True)
    def _clean_state(self):
        faults.reset_crash_state()
        yield
        faults.reset_crash_state()

    def test_spec_round_trip(self):
        plan = FaultPlan(crash_at=3, torn_write=True)
        assert FaultPlan.parse(plan.to_spec()) == plan
        parsed = FaultPlan.parse("crash_at=2,torn_write=1")
        assert parsed.crash_at == 2 and parsed.torn_write is True

    def test_validation_and_any_faults(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_at=-1)
        assert FaultPlan(crash_at=1).any_faults
        assert not FaultPlan().any_faults

    def test_crash_fires_at_nth_completion(self, monkeypatch):
        exits = []
        monkeypatch.setattr(
            faults.os, "_exit", lambda code: exits.append(code) or _exit_stub()
        )
        injector = FaultInjector(EchoClient(), FaultPlan(crash_at=2), count=False)
        injector.complete(LLMRequest(prompt=_PROMPTS[0]))  # 1st survives
        with pytest.raises(_StubExit):
            injector.complete(LLMRequest(prompt=_PROMPTS[1]))  # 2nd dies
        assert exits == [faults.CRASH_EXIT_CODE]

    def test_counter_is_shared_across_injectors(self, monkeypatch):
        monkeypatch.setattr(faults.os, "_exit", lambda code: _exit_stub())
        plan = FaultPlan(crash_at=2)
        first = FaultInjector(EchoClient(), plan, count=False)
        second = FaultInjector(EchoClient(), plan, count=False)
        first.complete(LLMRequest(prompt=_PROMPTS[0]))
        with pytest.raises(_StubExit):
            second.complete(LLMRequest(prompt=_PROMPTS[1]))

    def test_torn_write_fires_hooks_before_exit(self, monkeypatch):
        events = []
        monkeypatch.setattr(faults.os, "_exit", lambda code: _exit_stub())
        token = faults.register_crash_hook(lambda: events.append("torn"))
        injector = FaultInjector(
            EchoClient(), FaultPlan(crash_at=1, torn_write=True), count=False
        )
        with pytest.raises(_StubExit):
            injector.complete(LLMRequest(prompt=_PROMPTS[0]))
        assert events == ["torn"]
        faults.unregister_crash_hook(token)

    def test_hooks_skipped_without_torn_write(self, monkeypatch):
        events = []
        monkeypatch.setattr(faults.os, "_exit", lambda code: _exit_stub())
        faults.register_crash_hook(lambda: events.append("torn"))
        injector = FaultInjector(EchoClient(), FaultPlan(crash_at=1), count=False)
        with pytest.raises(_StubExit):
            injector.complete(LLMRequest(prompt=_PROMPTS[0]))
        assert events == []

    def test_unregister_is_idempotent(self):
        token = faults.register_crash_hook(lambda: None)
        faults.unregister_crash_hook(token)
        faults.unregister_crash_hook(token)  # unknown token: no error
        assert token not in faults._crash_hooks


class _StubExit(BaseException):
    """Stands in for the process disappearing under ``os._exit``."""


def _exit_stub():
    raise _StubExit

"""Tests for CircuitBreaker: state machine, windows, probes, counters."""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError, ConfigurationError
from repro.reliability import counters
from repro.reliability.breaker import (
    CircuitBreaker,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.reliability.clock import FakeClock


def _breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        name="test",
        failure_threshold=0.5,
        min_requests=4,
        window_s=30.0,
        open_duration_s=10.0,
        half_open_probes=2,
        clock=clock,
        count=False,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), clock


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(failure_threshold=0.0),
            dict(failure_threshold=1.5),
            dict(min_requests=0),
            dict(window_s=0.0),
            dict(open_duration_s=0.0),
            dict(half_open_probes=0),
            dict(slow_call_threshold_s=0.0),
        ],
    )
    def test_bad_config_is_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            _breaker(**bad)


class TestClosedToOpen:
    def test_starts_closed_and_admits(self):
        breaker, _clock = _breaker()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_opens_at_the_failure_threshold(self):
        breaker, _clock = _breaker(min_requests=4, failure_threshold=0.5)
        breaker.record_success(2)
        breaker.record_failure(1)
        assert breaker.state == STATE_CLOSED  # 1/3 < 0.5
        breaker.record_failure(1)
        assert breaker.state == STATE_OPEN  # 2/4 >= 0.5
        assert breaker.counters["opens"] == 1

    def test_min_requests_gates_the_rate_check(self):
        breaker, _clock = _breaker(min_requests=10)
        breaker.record_failure(5)  # 100% failing but below volume floor
        assert breaker.state == STATE_CLOSED

    def test_old_outcomes_fall_out_of_the_window(self):
        breaker, clock = _breaker(min_requests=4, window_s=30.0)
        breaker.record_failure(3)
        clock.advance(31.0)
        breaker.record_success(2)
        breaker.record_failure(2)  # rate 2/4 but the 3 old failures pruned
        assert breaker.state == STATE_OPEN  # 2/4 = 0.5 >= threshold
        # Sanity: had the old failures survived, opening would have
        # happened already at the first new failure.

    def test_batched_outcomes_count_per_item(self):
        breaker, _clock = _breaker(min_requests=4)
        breaker.record_failure(4)
        assert breaker.state == STATE_OPEN


class TestOpenAndRefusal:
    def test_open_refuses_until_cooldown(self):
        breaker, clock = _breaker(open_duration_s=10.0)
        breaker.record_failure(4)
        assert not breaker.allow()
        assert breaker.counters["rejected"] == 1
        clock.advance(9.9)
        assert not breaker.allow()

    def test_guard_raises_circuit_open(self):
        breaker, _clock = _breaker()
        breaker.record_failure(4)
        with pytest.raises(CircuitOpenError):
            breaker.guard()

    def test_failures_while_open_do_not_extend_cooldown(self):
        breaker, clock = _breaker(open_duration_s=10.0)
        breaker.record_failure(4)
        clock.advance(5.0)
        breaker.record_failure(1)
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN


class TestHalfOpen:
    def _opened(self, **kwargs):
        breaker, clock = _breaker(**kwargs)
        breaker.record_failure(4)
        clock.advance(breaker.open_duration_s)
        return breaker, clock

    def test_cooldown_transitions_lazily_to_half_open(self):
        breaker, _clock = self._opened()
        assert breaker.state == STATE_HALF_OPEN

    def test_admits_exactly_the_probe_quota(self):
        breaker, _clock = self._opened(half_open_probes=2)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # quota consumed, deterministic
        assert breaker.counters["probes"] == 2

    def test_probe_successes_close_the_breaker(self):
        breaker, _clock = self._opened(half_open_probes=2)
        assert breaker.allow() and breaker.allow()
        breaker.record_success(2)
        assert breaker.state == STATE_CLOSED
        assert breaker.counters["closes"] == 1
        # The window was reset: old failures cannot instantly re-open.
        breaker.record_failure(1)
        assert breaker.state == STATE_CLOSED

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker, clock = self._opened()
        assert breaker.allow()
        breaker.record_failure(1)
        assert breaker.state == STATE_OPEN
        assert breaker.counters["opens"] == 2
        clock.advance(breaker.open_duration_s)
        assert breaker.state == STATE_HALF_OPEN


class TestSlowCalls:
    def test_slow_success_counts_as_failure(self):
        breaker, _clock = _breaker(slow_call_threshold_s=1.0, min_requests=4)
        for _ in range(4):
            breaker.record_success(1, duration_s=2.0)
        assert breaker.state == STATE_OPEN
        assert breaker.counters["slow_calls"] == 4

    def test_fast_success_is_a_success(self):
        breaker, _clock = _breaker(slow_call_threshold_s=1.0)
        breaker.record_success(4, duration_s=0.5)
        assert breaker.counters["successes"] == 4
        assert breaker.counters["slow_calls"] == 0

    def test_untimed_success_is_never_reclassified(self):
        breaker, _clock = _breaker(slow_call_threshold_s=1.0)
        breaker.record_success(4)
        assert breaker.counters["slow_calls"] == 0


class TestIntrospection:
    def test_as_dict_shape_and_transition_log(self):
        breaker, clock = _breaker()
        breaker.record_failure(4)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure(1)
        state = breaker.as_dict()
        assert state["name"] == "test"
        assert state["state"] == STATE_OPEN
        assert [t["state"] for t in state["transitions"]] == [
            STATE_OPEN, STATE_HALF_OPEN, STATE_OPEN,
        ]
        assert state["counters"]["opens"] == 2

    def test_state_gauge_encoding(self):
        breaker, clock = _breaker()
        assert breaker.state_gauge() == 0.0
        breaker.record_failure(4)
        assert breaker.state_gauge() == 1.0
        clock.advance(10.0)
        assert breaker.state_gauge() == 0.5

    def test_global_counters_mirror_when_counting(self):
        before = counters.snapshot()
        breaker, clock = _breaker(count=True)
        breaker.record_failure(4)
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success(2)
        delta = counters.delta_since(before)
        assert delta["breaker_opens"] == 1
        assert delta["breaker_closes"] == 1
        assert delta["breaker_failures"] == 4
        assert delta["breaker_rejections"] == 1
        assert delta["breaker_probes"] == 1

    def test_count_false_skips_the_global_table(self):
        before = counters.snapshot()
        breaker, _clock = _breaker(count=False)
        breaker.record_failure(4)
        assert counters.delta_since(before)["breaker_opens"] == 0

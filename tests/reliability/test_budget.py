"""Tests for DeadlineBudget: accounting, expiry, staged errors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.reliability.budget import DeadlineBudget
from repro.reliability.clock import FakeClock


class TestAccounting:
    def test_total_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DeadlineBudget(0.0)

    def test_elapsed_and_remaining_track_the_clock(self):
        clock = FakeClock()
        budget = DeadlineBudget(10.0, clock=clock)
        assert budget.remaining() == 10.0
        clock.advance(4.0)
        assert budget.elapsed() == 4.0
        assert budget.remaining() == 6.0
        assert not budget.expired

    def test_remaining_clamps_at_zero(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        clock.advance(5.0)
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_backdated_start_counts_queue_time(self):
        clock = FakeClock(start=100.0)
        clock.advance(3.0)
        budget = DeadlineBudget(10.0, clock=clock, started_at=100.0)
        assert budget.elapsed() == 3.0
        assert budget.remaining() == 7.0


class TestCheck:
    def test_check_passes_while_time_remains(self):
        budget = DeadlineBudget(10.0, clock=FakeClock())
        budget.check("any.stage")  # no raise

    def test_check_raises_naming_the_stage(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            budget.check("scheduler.queue")
        assert excinfo.value.stage == "scheduler.queue"
        assert "scheduler.queue" in str(excinfo.value)


class TestStageTimeout:
    def test_uncapped_is_the_remaining_time(self):
        clock = FakeClock()
        budget = DeadlineBudget(10.0, clock=clock)
        clock.advance(3.0)
        assert budget.stage_timeout() == 7.0

    def test_cap_bounds_the_stage(self):
        budget = DeadlineBudget(10.0, clock=FakeClock())
        assert budget.stage_timeout(cap=2.0) == 2.0

    def test_expired_budget_hands_out_zero_not_fresh_time(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        clock.advance(5.0)
        assert budget.stage_timeout(cap=30.0) == 0.0

    def test_negative_cap_is_clamped(self):
        budget = DeadlineBudget(10.0, clock=FakeClock())
        assert budget.stage_timeout(cap=-1.0) == 0.0


class TestIntrospection:
    def test_as_dict_shape(self):
        clock = FakeClock()
        budget = DeadlineBudget(2.0, clock=clock)
        clock.advance(0.5)
        state = budget.as_dict()
        assert state == {
            "total_s": 2.0,
            "elapsed_s": 0.5,
            "remaining_s": 1.5,
            "expired": False,
        }

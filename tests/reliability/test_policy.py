"""RetryPolicy: classification, backoff math, deterministic jitter, specs."""

from __future__ import annotations

import pytest

from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    DeadlineExceededError,
    LLMError,
    MalformedCompletionError,
    PromptError,
    RateLimitError,
    RetryExhaustedError,
    TransientLLMError,
)
from repro.reliability import RetryPolicy, is_retryable


class TestClassification:
    def test_transient_family_is_retryable(self):
        assert is_retryable(TransientLLMError("overloaded"))
        assert is_retryable(RateLimitError("slow down"))
        assert is_retryable(MalformedCompletionError("garbled"))

    def test_terminal_errors_are_not(self):
        for error in (
            LLMError("generic"),
            BudgetExceededError("budget"),
            PromptError("bad prompt"),
            DeadlineExceededError("too late"),
            RetryExhaustedError("gave up"),
            ValueError("not even ours"),
        ):
            assert not is_retryable(error)


class TestBackoffMath:
    def test_exponential_curve_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0,
                             jitter=0.0)
        delays = [policy.backoff_delay(n) for n in (1, 2, 3, 4, 5, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]  # capped at max_delay_s

    def test_jitter_bounds_and_cap(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0,
                             jitter=0.5)
        for attempt in range(1, 8):
            raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            delay = policy.backoff_delay(attempt, key="some prompt")
            assert 0.5 * raw <= delay <= 1.0  # within [1-j, 1+j]·raw, re-capped

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(seed=3)
        b = RetryPolicy(seed=3)
        sequence = [a.backoff_delay(n, key="prompt") for n in (1, 2, 3)]
        assert [b.backoff_delay(n, key="prompt") for n in (1, 2, 3)] == sequence

    def test_jitter_varies_with_seed_and_key(self):
        base = RetryPolicy(seed=0).backoff_delay(2, key="prompt")
        assert RetryPolicy(seed=1).backoff_delay(2, key="prompt") != base
        assert RetryPolicy(seed=0).backoff_delay(2, key="other") != base

    def test_rate_limit_hint_is_a_floor(self):
        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.02, jitter=0.0)
        hinted = RateLimitError("throttled", retry_after_s=0.5)
        assert policy.delay_for_error(hinted, attempt=1) == 0.5
        plain = TransientLLMError("blip")
        assert policy.delay_for_error(plain, attempt=1) == 0.01

    def test_attempt_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_delay(0)


class TestValidationAndSpecs:
    def test_invalid_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(default_timeout_s=0.0)

    def test_spec_round_trip(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.1, max_delay_s=3.0,
                             multiplier=1.5, jitter=0.25, seed=9,
                             default_timeout_s=30.0)
        assert RetryPolicy.parse(policy.to_spec()) == policy

    def test_parse_defaults_and_errors(self):
        assert RetryPolicy.parse("attempts=2") == RetryPolicy(max_attempts=2)
        with pytest.raises(ConfigurationError):
            RetryPolicy.parse("attempts=2,bogus=1")

    def test_without_retries(self):
        policy = RetryPolicy(max_attempts=5).without_retries()
        assert policy.max_attempts == 1

"""Parallel output must be bit-identical to serial output.

This is the load-bearing guarantee of the runtime subsystem: the study
grid may fan out across threads or processes, and the completion cache
may answer repeated prompts from memory, but every float in the study
JSON stays exactly the same.
"""

from __future__ import annotations

import json

import pytest

from repro.config import StudyConfig, SurrogateScale
from repro.errors import ReproError
from repro.runtime import grid
from repro.runtime.cache import CompletionCache, activate, deactivate
from repro.runtime.executor import (
    ProcessStudyExecutor,
    SerialExecutor,
    ThreadStudyExecutor,
)
from repro.study import table3, table4

#: Deliberately tiny: one untrained baseline plus one prompted model over
#: two targets keeps each backend's run to a few seconds.
_CONFIG = StudyConfig(
    name="parity",
    seeds=(0, 1),
    test_fraction=0.2,
    train_pair_budget=120,
    epochs=2,
    dataset_scale=0.05,
    surrogate=SurrogateScale(
        d_model=16, n_layers=1, n_heads=2, d_ff=32, max_len=32, vocab_size=1024
    ),
)
_MATCHERS = ("StringSim", "MatchGPT[GPT-4o-Mini]")
_CODES = ("ABT", "BEER")


@pytest.fixture(autouse=True)
def _no_active_cache():
    deactivate()
    yield
    deactivate()


def _table3_json(executor, use_cache: bool = False) -> str:
    """A full_run-style serialisation of the Table-3 block."""
    result = table3.run(
        _CONFIG, _MATCHERS, codes=_CODES, executor=executor, use_cache=use_cache
    )
    return json.dumps(
        {
            "per_dataset": result.per_dataset_table(),
            "std": {
                r.matcher_name: {c: t.std_f1 for c, t in r.per_dataset.items()}
                for r in result.results
            },
            "mean": result.quality_table(),
            "rendered": result.render(),
        },
        sort_keys=True,
    )


class TestExecutorParity:
    def test_thread_and_process_match_serial(self):
        serial = _table3_json(SerialExecutor())
        with ThreadStudyExecutor(2) as executor:
            threaded = _table3_json(executor)
        with ProcessStudyExecutor(2) as executor:
            processed = _table3_json(executor)
        assert threaded == serial
        assert processed == serial

    def test_cache_does_not_change_results(self):
        serial = _table3_json(SerialExecutor())
        activate(CompletionCache())
        cached = _table3_json(SerialExecutor(), use_cache=True)
        assert cached == serial

    def test_trained_matcher_thread_parity(self):
        """Training on worker threads must not perturb results.

        Regression for the process-wide autograd grad-mode flag: one
        cell's ``no_grad()`` evaluation raced another cell's training
        step, so threaded runs of *trained* matchers crashed while the
        prompted-only parity cases passed.
        """
        def run(executor):
            result = table3.run(
                _CONFIG, ("Ditto",), codes=_CODES, executor=executor
            )
            return json.dumps(result.per_dataset_table(), sort_keys=True)

        serial = run(SerialExecutor())
        with ThreadStudyExecutor(2) as executor:
            threaded = run(executor)
        assert threaded == serial

    def test_row_order_follows_request_order(self):
        result = table3.run(
            _CONFIG, _MATCHERS, codes=_CODES, executor=SerialExecutor()
        )
        assert [r.matcher_name for r in result.results] == list(_MATCHERS)
        for row in result.results:
            assert tuple(row.per_dataset) == _CODES


class TestTable4CacheReuse:
    def test_none_strategy_reuses_table3_prompts(self):
        """Table 4's ``none`` strategy re-sends Table 3's MatchGPT prompts
        verbatim — with the cache active they must all hit."""
        cache = activate(CompletionCache())
        table3.run(
            _CONFIG,
            ("MatchGPT[GPT-4o-Mini]",),
            codes=_CODES,
            executor=SerialExecutor(),
            use_cache=True,
        )
        misses_before = cache.misses
        assert misses_before > 0
        assert cache.hits == 0

        plain = table4.run(_CONFIG, models=("gpt-4o-mini",), codes=_CODES)
        deactivate()
        activate(cache)
        cached = table4.run(
            _CONFIG, models=("gpt-4o-mini",), codes=_CODES, use_cache=True
        )
        assert cache.hits >= misses_before  # every Table-3 prompt hit
        for key, row in plain.results.items():
            assert cached.results[key].dataset_means() == row.dataset_means()


class TestCacheAccounting:
    def test_threaded_stats_match_cache_counters(self):
        """Regression: concurrent cells share one cache, so summing
        per-cell counter deltas overlaps windows and overcounted the
        footer by the worker count."""
        from repro.runtime.stats import RuntimeStats

        cache = activate(CompletionCache())
        stats = RuntimeStats(workers=4, backend="thread")
        with ThreadStudyExecutor(4) as executor:
            table3.run(
                _CONFIG,
                ("MatchGPT[GPT-4o-Mini]",),
                codes=_CODES,
                executor=executor,
                stats=stats,
                use_cache=True,
            )
        reported = stats.as_dict()["cache"]
        assert reported["hits"] == cache.hits
        assert reported["misses"] == cache.misses


class TestGridCells:
    def test_cell_validation(self):
        with pytest.raises(ReproError):
            grid.GridCell(
                kind="table5", matcher_name="x", target_code="ABT",
                config=_CONFIG, codes=("ABT",),
            )
        with pytest.raises(ReproError):
            grid.GridCell(
                kind="table4", matcher_name="x", target_code="ABT",
                config=_CONFIG, codes=("ABT",),
            )
        with pytest.raises(ReproError):
            grid.GridCell(
                kind="table3", matcher_name="x", target_code="WDC",
                config=_CONFIG, codes=("ABT",),
            )

    def test_run_cell_reports_timing(self):
        cell = grid.GridCell(
            kind="table3",
            matcher_name="StringSim",
            target_code="ABT",
            config=_CONFIG,
            codes=_CODES,
        )
        result = grid.run_cell(cell)
        assert result.matcher_name == "StringSim"
        assert result.target_code == "ABT"
        assert result.seconds > 0
        assert result.result.scores

    def test_dataset_bundle_memoized(self):
        first = grid.dataset_bundle(0.05, 7)
        assert grid.dataset_bundle(0.05, 7) is first

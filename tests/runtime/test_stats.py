"""Tests for the runtime stats accounting."""

from __future__ import annotations

import pytest

from repro.runtime.stats import RuntimeStats


class TestPhases:
    def test_phase_accumulates_and_reenters(self):
        stats = RuntimeStats()
        with stats.phase("table3"):
            pass
        first = stats.phase_seconds["table3"]
        with stats.phase("table3"):
            pass
        assert stats.phase_seconds["table3"] >= first
        assert list(stats.phase_seconds) == ["table3"]

    def test_phase_records_on_exception(self):
        stats = RuntimeStats()
        with pytest.raises(RuntimeError):
            with stats.phase("boom"):
                raise RuntimeError
        assert "boom" in stats.phase_seconds


class TestTasksAndSpeedup:
    def test_task_accounting(self):
        stats = RuntimeStats(workers=4, backend="thread")
        stats.record_tasks("table3", 11, 22.0)
        stats.record_tasks("table3", 11, 11.0)
        assert stats.n_tasks == 22
        assert stats.phase_task_seconds["table3"] == pytest.approx(33.0)

    def test_speedup_is_task_over_wall(self):
        stats = RuntimeStats(workers=2)
        stats.phase_seconds["grid"] = 10.0
        stats.record_tasks("grid", 4, 30.0)
        assert stats.speedup_vs_serial("grid") == pytest.approx(3.0)

    def test_speedup_none_without_tasks(self):
        stats = RuntimeStats()
        stats.phase_seconds["static"] = 1.0
        assert stats.speedup_vs_serial("static") is None


class TestCacheMergeAndSerialisation:
    def test_merge_cache_deltas(self):
        stats = RuntimeStats()
        stats.merge_cache({"hits": 3, "misses": 1, "saved_dollars": 0.5})
        stats.merge_cache({"hits": 1, "misses": 1, "saved_prompt_tokens": 10})
        assert stats.cache_counters["hits"] == 4
        assert stats.cache_hit_rate == pytest.approx(4 / 6)

    def test_as_dict_shape(self):
        stats = RuntimeStats(workers=2, backend="thread")
        with stats.phase("table3"):
            pass
        stats.record_tasks("table3", 5, 1.0)
        stats.merge_cache({"hits": 2, "misses": 2})
        block = stats.as_dict()
        assert block["workers"] == 2
        assert block["backend"] == "thread"
        assert block["phases"]["table3"]["tasks"] == 5
        assert block["cache"]["hit_rate"] == pytest.approx(0.5)
        assert block["total_wall_seconds"] >= 0

    def test_footer_mentions_cache_when_used(self):
        stats = RuntimeStats()
        stats.merge_cache({"hits": 1, "misses": 1})
        assert "cache" in stats.footer()
        assert "backend=serial" in stats.footer()

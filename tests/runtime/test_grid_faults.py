"""Fault-injected study runs: byte-identical tables, graceful degradation.

The acceptance property of the reliability layer: a seeded study run
under a 20% transient-error fault plan with the retry layer on produces
**byte-identical** tables to a fault-free run — across worker counts —
while the retry/fault counters show the layer actually worked.  With
retries disabled, the same faults degrade into structured
``CellFailure`` records instead of aborting (unless ``fail_fast``).
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.config import StudyConfig, SurrogateScale
from repro.errors import CellExecutionError
from repro.reliability import (
    FaultPlan,
    RetryPolicy,
    activate_faults,
    activate_policy,
    counters,
    deactivate_faults,
    deactivate_policy,
)
from repro.runtime import grid
from repro.runtime.cache import deactivate
from repro.runtime.executor import SerialExecutor, ThreadStudyExecutor
from repro.runtime.stats import RuntimeStats
from repro.study import table3

_CONFIG = StudyConfig(
    name="faults",
    seeds=(0, 1),
    test_fraction=0.2,
    train_pair_budget=120,
    epochs=2,
    dataset_scale=0.05,
    surrogate=SurrogateScale(
        d_model=16, n_layers=1, n_heads=2, d_ff=32, max_len=32, vocab_size=1024
    ),
)
#: Only the LLM-backed matcher: StringSim never issues a completion, so
#: faults cannot touch it.
_MATCHERS = ("MatchGPT[GPT-4o-Mini]",)
_CODES = ("ABT", "BEER")

#: 20% transient + assorted other faults; zero-length sleeps keep the
#: suite fast (the backoff *schedule* is pinned by tests/reliability).
_PLAN = FaultPlan(transient_rate=0.2, rate_limit_rate=0.03,
                  malformed_rate=0.02, retry_after_s=0.0, seed=3)
_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.0, max_delay_s=0.0)


@pytest.fixture(autouse=True)
def _clean_reliability_state(monkeypatch):
    for env in ("REPRO_RETRY", "REPRO_FAULTS", "REPRO_FAIL_FAST",
                "REPRO_CELL_RETRIES", "REPRO_CACHE", "REPRO_CACHE_PATH"):
        monkeypatch.delenv(env, raising=False)
    deactivate()
    deactivate_policy()
    deactivate_faults()
    yield
    deactivate()
    deactivate_policy()
    deactivate_faults()


def _table3_json(executor, stats=None) -> str:
    result = table3.run(
        _CONFIG, _MATCHERS, codes=_CODES, executor=executor, stats=stats
    )
    return json.dumps(
        {
            "per_dataset": result.per_dataset_table(),
            "mean": result.quality_table(),
            "rendered": result.render(),
        },
        sort_keys=True,
    )


class TestFaultParity:
    def test_injected_faults_leave_tables_byte_identical(self):
        reference = _table3_json(SerialExecutor())

        activate_faults(_PLAN)
        activate_policy(_POLICY)
        before = counters.snapshot()
        stats = RuntimeStats(workers=4, backend="thread")
        with ThreadStudyExecutor(4) as executor:
            faulted = _table3_json(executor, stats=stats)
        delta = counters.delta_since(before)

        assert faulted == reference
        # The layer provably did something: faults landed, retries absorbed.
        assert delta["faults_injected"] > 0
        assert delta["transient_faults"] > 0
        assert delta["request_retries"] > 0
        # ... and the run's stats block carries the same evidence.
        reported = stats.as_dict()["reliability"]
        assert reported["faults_injected"] == delta["faults_injected"]
        assert reported["request_retries"] == delta["request_retries"]
        assert reported["cell_failures"] == 0
        assert stats.reliability_active

    def test_serial_and_threaded_fault_runs_match(self):
        activate_faults(_PLAN)
        activate_policy(_POLICY)
        serial = _table3_json(SerialExecutor())
        with ThreadStudyExecutor(4) as executor:
            threaded = _table3_json(executor)
        assert threaded == serial


class TestGracefulDegradation:
    def test_disabled_retries_degrade_into_cell_failures(self):
        activate_faults(_PLAN)
        activate_policy(_POLICY.without_retries())
        stats = RuntimeStats()
        result = table3.run(
            _CONFIG, _MATCHERS, codes=_CODES, executor=SerialExecutor(),
            stats=stats,
        )
        # Every cell trips an injected fault early, fails, and is recorded
        # instead of aborting the run.
        assert result.results == [] or all(
            len(r.per_dataset) < len(_CODES) for r in result.results
        )
        assert stats.cell_failures
        failure = stats.cell_failures[0]
        assert failure["matcher"] == _MATCHERS[0]
        assert failure["target"] in _CODES
        assert failure["error_type"] == "RetryExhaustedError"
        assert failure["retryable"] is True
        assert failure["attempts"] >= 2  # the whole-cell retry also ran
        assert stats.reliability_counters["cell_failures"] == len(
            stats.cell_failures
        )
        block = stats.as_dict()
        assert block["cell_failures"] == stats.cell_failures

    def test_fail_fast_aborts_on_first_failure(self):
        activate_faults(_PLAN)
        activate_policy(_POLICY.without_retries())
        config = replace(_CONFIG, fail_fast=True)
        with pytest.raises(CellExecutionError):
            table3.run(
                config, _MATCHERS, codes=_CODES, executor=SerialExecutor()
            )

    def test_fail_fast_env_overrides_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAIL_FAST", "1")
        activate_faults(_PLAN)
        activate_policy(_POLICY.without_retries())
        with pytest.raises(CellExecutionError):
            table3.run(
                _CONFIG, _MATCHERS, codes=_CODES, executor=SerialExecutor()
            )

    def test_collect_rows_skips_failures(self):
        cell = grid.GridCell(
            kind="table3", matcher_name="M", target_code="ABT",
            config=_CONFIG, codes=_CODES,
        )
        failure = grid.CellFailure(
            matcher_name="M", target_code="ABT",
            error_type="RetryExhaustedError", message="x", attempts=2,
            seconds=0.1, retryable=True,
        )
        assert grid.collect_rows([cell], [failure], {}) == []
        assert failure.as_dict()["seconds"] == 0.1

"""Clock injection across the persistence layer.

``persist``, ``cache`` and ``journal`` used to call ``time.time()``
directly for quarantine-sidecar timestamps, which made the sidecar
names untestable and left three holes in the repo-wide "all time is
injectable" rule.  These tests pin the fixed behaviour: a
:class:`~repro.reliability.clock.FakeClock` fully determines every
timestamp those modules emit.
"""

from __future__ import annotations

import json
import time

from repro.reliability.clock import FakeClock, SystemClock
from repro.runtime.cache import CompletionCache
from repro.runtime.journal import JOURNAL_VERSION, CellJournal
from repro.runtime.persist import quarantine_file, quarantine_line


def test_clock_wall_readings():
    # FakeClock's wall reading is its simulated time; SystemClock's is
    # the real epoch.  Both are what sidecar names are derived from.
    fake = FakeClock(41.0)
    fake.advance(1.5)
    assert fake.wall() == 42.5
    assert abs(SystemClock().wall() - time.time()) < 5.0


def test_quarantine_file_sidecar_named_from_injected_clock(tmp_path):
    damaged = tmp_path / "state.json"
    damaged.write_text("not json")
    sidecar = quarantine_file(damaged, clock=FakeClock(7.9))
    assert sidecar.name == "state.json.corrupt-7"
    assert sidecar.exists() and not damaged.exists()


def test_quarantine_line_sidecar_named_from_injected_clock(tmp_path):
    store = tmp_path / "entries.jsonl"
    store.write_text("good\nbad\n")
    sidecar = quarantine_line(store, "bad", clock=FakeClock(1234.0))
    assert sidecar.name == "entries.jsonl.corrupt-1234"
    assert sidecar.read_text() == "bad\n"


def test_completion_cache_quarantines_with_injected_clock(tmp_path):
    path = tmp_path / "completions.jsonl"
    path.write_text("this is not a cache line\n")
    cache = CompletionCache(path=path, clock=FakeClock(99.0))
    assert cache.quarantined == 1
    sidecar = path.with_name("completions.jsonl.corrupt-99")
    assert sidecar.exists()
    assert cache.corruption_errors[0].quarantined_to == str(sidecar)


def test_cell_journal_quarantines_with_injected_clock(tmp_path):
    path = tmp_path / "cells.journal.jsonl"
    # A complete (newline-terminated) damaged record is corruption, not
    # the expected torn tail, so it must be quarantined.
    path.write_text(
        json.dumps({"v": JOURNAL_VERSION, "kind": "header", "info": {}})
        + "\n{broken record\n"
    )
    journal = CellJournal(path, clock=FakeClock(555.0))
    try:
        assert journal.quarantined == 1
        sidecar = path.with_name("cells.journal.jsonl.corrupt-555")
        assert sidecar.exists()
        assert journal.corruption_errors[0].quarantined_to == str(sidecar)
    finally:
        journal.close()

"""Tests for the write-ahead cell journal."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import get_profile
from repro.errors import CorruptStateError
from repro.eval.loo import SeedScore, TargetResult
from repro.reliability import faults
from repro.runtime.grid import CellFailure, CellResult, GridCell
from repro.runtime.journal import JOURNAL_VERSION, CellJournal, cell_key


@pytest.fixture(autouse=True)
def _clean_crash_state():
    yield
    faults.reset_crash_state()


def _cell(**overrides) -> GridCell:
    base = dict(
        kind="table3",
        matcher_name="StringSim",
        target_code="ABT",
        config=get_profile("smoke"),
        codes=("ABT", "BEER"),
        dataset_seed=7,
        seen_in_training=False,
    )
    base.update(overrides)
    return GridCell(**base)


def _result(cell: GridCell) -> CellResult:
    target = TargetResult(dataset=cell.target_code, seen_in_training=False)
    target.scores = [
        SeedScore(seed=0, f1=81.25, precision=77.5, recall=85.5),
        SeedScore(seed=1, f1=79.0, precision=76.25, recall=82.0),
    ]
    return CellResult(
        matcher_name=cell.matcher_name,
        target_code=cell.target_code,
        result=target,
        seconds=1.5,
        cache_delta={"hits": 3.0, "misses": 1.0},
        reliability_delta={"attempts": 4.0},
        retries=1,
    )


def _failure(cell: GridCell) -> CellFailure:
    return CellFailure(
        matcher_name=cell.matcher_name,
        target_code=cell.target_code,
        error_type="TransientLLMError",
        message="injected",
        attempts=3,
        seconds=0.4,
        retryable=True,
    )


class TestCellKey:
    def test_stable_across_processes_inputs(self):
        assert cell_key(_cell()) == cell_key(_cell())

    def test_sensitive_to_science_inputs(self):
        base = cell_key(_cell())
        assert cell_key(_cell(target_code="BEER")) != base
        assert cell_key(_cell(dataset_seed=8)) != base
        assert cell_key(_cell(config=get_profile("default"))) != base

    def test_insensitive_to_runtime_knobs(self):
        smoke = get_profile("smoke")
        reconfigured = dataclasses.replace(smoke, workers=8, cell_retries=5)
        assert cell_key(_cell()) == cell_key(_cell(config=reconfigured))


class TestRoundTrip:
    def test_result_replays_byte_identical(self, tmp_path):
        cell = _cell()
        with CellJournal(tmp_path / "j.jsonl", fresh=True) as journal:
            journal.record(cell, _result(cell), phase="table3")

        reopened = CellJournal(tmp_path / "j.jsonl")
        replayed = reopened.lookup(cell)
        assert replayed == _result(cell)
        assert reopened.records_loaded == 1
        assert cell in reopened
        reopened.close()

    def test_failure_replays(self, tmp_path):
        cell = _cell()
        with CellJournal(tmp_path / "j.jsonl", fresh=True) as journal:
            journal.record(cell, _failure(cell))
        reopened = CellJournal(tmp_path / "j.jsonl")
        assert reopened.lookup(cell) == _failure(cell)
        reopened.close()

    def test_unknown_cell_returns_none(self, tmp_path):
        journal = CellJournal(tmp_path / "j.jsonl", fresh=True)
        assert journal.lookup(_cell()) is None
        journal.close()

    def test_fresh_discards_existing_records(self, tmp_path):
        cell = _cell()
        with CellJournal(tmp_path / "j.jsonl", fresh=True) as journal:
            journal.record(cell, _result(cell))
        fresh = CellJournal(tmp_path / "j.jsonl", fresh=True)
        assert len(fresh) == 0
        fresh.close()

    def test_header_records_are_ignored_on_replay(self, tmp_path):
        cell = _cell()
        with CellJournal(tmp_path / "j.jsonl", fresh=True) as journal:
            journal.write_header({"profile": "smoke"})
            journal.record(cell, _result(cell))
        reopened = CellJournal(tmp_path / "j.jsonl")
        assert reopened.records_loaded == 1
        assert len(reopened) == 1
        reopened.close()


class TestDamageTolerance:
    def test_torn_final_line_is_expected_not_corruption(self, tmp_path):
        cell = _cell()
        path = tmp_path / "j.jsonl"
        with CellJournal(path, fresh=True) as journal:
            journal.record(cell, _result(cell))
        with open(path, "ab") as handle:
            handle.write(b'{"v": 1, "key": "abc", "kin')  # kill mid-append

        reopened = CellJournal(path)
        assert reopened.torn_tail_dropped
        assert reopened.quarantined == 0
        assert reopened.corruption_errors == []
        assert reopened.lookup(cell) is not None
        reopened.close()

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cell = _cell()
        path = tmp_path / "j.jsonl"
        with CellJournal(path, fresh=True) as journal:
            journal.record(cell, _result(cell))
        tampered = path.read_text().replace("81.25", "99.99")
        assert tampered != path.read_text()
        path.write_text(tampered)

        reopened = CellJournal(path)
        assert reopened.lookup(cell) is None
        assert reopened.quarantined == 1
        assert isinstance(reopened.corruption_errors[0], CorruptStateError)
        assert "checksum" in str(reopened.corruption_errors[0])
        assert list(tmp_path.glob("j.jsonl.corrupt-*"))
        reopened.close()

    def test_mid_file_garbage_is_quarantined_not_torn(self, tmp_path):
        cell = _cell()
        path = tmp_path / "j.jsonl"
        with CellJournal(path, fresh=True) as journal:
            journal.record(cell, _result(cell))
        healthy = path.read_text()
        path.write_text("complete garbage line\n" + healthy)

        reopened = CellJournal(path)
        assert not reopened.torn_tail_dropped
        assert reopened.quarantined == 1
        assert reopened.lookup(cell) is not None
        reopened.close()

    def test_wrong_version_is_quarantined(self, tmp_path):
        cell = _cell()
        path = tmp_path / "j.jsonl"
        with CellJournal(path, fresh=True) as journal:
            journal.record(cell, _result(cell))
        bumped = path.read_text().replace(
            f'"v": {JOURNAL_VERSION}', f'"v": {JOURNAL_VERSION + 1}'
        )
        path.write_text(bumped)
        reopened = CellJournal(path)
        assert reopened.records_loaded == 0
        assert reopened.quarantined == 1
        reopened.close()


class TestTornWriteHook:
    def test_registered_hook_writes_torn_tail(self, tmp_path):
        cell = _cell()
        path = tmp_path / "j.jsonl"
        journal = CellJournal(path, fresh=True)
        journal.record(cell, _result(cell))
        # Fire the crash hooks the way an injected crash would, without
        # actually exiting the interpreter.
        for hook in list(faults._crash_hooks.values()):
            hook()
        journal.close()

        assert not path.read_text().endswith("\n")
        reopened = CellJournal(path)
        assert reopened.torn_tail_dropped
        assert reopened.lookup(cell) is not None
        reopened.close()

    def test_close_unregisters_hook(self, tmp_path):
        before = dict(faults._crash_hooks)
        journal = CellJournal(tmp_path / "j.jsonl", fresh=True)
        assert len(faults._crash_hooks) == len(before) + 1
        journal.close()
        assert faults._crash_hooks == before

"""Tests for worker-death and hang containment in the pool executors."""

from __future__ import annotations

import os
import threading

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.runtime.executor import (
    CELL_TIMEOUT_ENV,
    ProcessStudyExecutor,
    SerialExecutor,
    ThreadStudyExecutor,
    resolve_cell_timeout,
)

_CRASH_INPUT = 13


def _double_or_die(x: int) -> int:
    """Module-level (picklable) worker that kills its process on 13."""
    if x == _CRASH_INPUT:
        os._exit(1)
    return x * 2


class TestProcessWorkerDeath:
    def test_crash_converts_via_on_crash(self):
        with ProcessStudyExecutor(2) as executor:
            out = executor.map_tasks(
                _double_or_die,
                [1, _CRASH_INPUT, 3],
                on_crash=lambda task, error: ("crashed", task),
            )
            assert out == [2, ("crashed", _CRASH_INPUT), 6]
            # One rebuild after the batch broke, one after the isolation
            # re-run reproduced the crash.
            assert executor.pool_rebuilds == 2

    def test_crash_raises_without_on_crash(self):
        with ProcessStudyExecutor(2) as executor:
            with pytest.raises(WorkerCrashError, match="died"):
                executor.map_tasks(_double_or_die, [1, _CRASH_INPUT])

    def test_innocent_bystanders_complete(self):
        # Tasks sharing the pool with the culprit are re-run in isolation
        # and must all produce their real results.
        with ProcessStudyExecutor(2) as executor:
            tasks = [1, 2, _CRASH_INPUT, 4, 5, 6]
            out = executor.map_tasks(
                _double_or_die, tasks, on_crash=lambda task, error: None
            )
            assert out == [2, 4, None, 8, 10, 12]

    def test_pool_usable_after_crash(self):
        with ProcessStudyExecutor(2) as executor:
            executor.map_tasks(
                _double_or_die, [_CRASH_INPUT], on_crash=lambda task, error: None
            )
            assert executor.map_tasks(_double_or_die, [10, 20]) == [20, 40]

    def test_on_result_fires_for_crash_substitutes(self):
        seen: list[tuple[int, object]] = []
        with ProcessStudyExecutor(2) as executor:
            executor.map_tasks(
                _double_or_die,
                [1, _CRASH_INPUT],
                on_result=lambda index, value: seen.append((index, value)),
                on_crash=lambda task, error: ("crashed", task),
            )
        assert sorted(seen) == [(0, 2), (1, ("crashed", _CRASH_INPUT))]


class TestHangWatchdog:
    def test_hung_task_degrades_and_others_complete(self):
        release = threading.Event()

        def maybe_hang(x: int) -> int:
            if x == 1:
                release.wait(timeout=30)
            return x * 2

        executor = ThreadStudyExecutor(2, cell_timeout_s=0.2)
        try:
            out = executor.map_tasks(
                maybe_hang,
                [0, 1, 2],
                on_crash=lambda task, error: ("hung", task),
            )
            assert out == [0, ("hung", 1), 4]
            assert executor.pool_rebuilds == 1
        finally:
            release.set()
            executor.close()

    def test_hung_task_raises_without_on_crash(self):
        release = threading.Event()
        executor = ThreadStudyExecutor(2, cell_timeout_s=0.2)
        try:
            with pytest.raises(WorkerCrashError, match="timeout"):
                executor.map_tasks(lambda x: release.wait(timeout=30), [0])
        finally:
            release.set()
            executor.close()

    def test_fast_tasks_unaffected_by_watchdog(self):
        with ThreadStudyExecutor(2, cell_timeout_s=5.0) as executor:
            assert executor.map_tasks(lambda x: x + 1, list(range(6))) == [
                1, 2, 3, 4, 5, 6,
            ]


class TestSerialCallbacks:
    def test_on_result_fires_in_order(self):
        seen = []
        out = SerialExecutor().map_tasks(
            lambda x: x * 10, [1, 2, 3], on_result=lambda i, v: seen.append((i, v))
        )
        assert out == [10, 20, 30]
        assert seen == [(0, 10), (1, 20), (2, 30)]


class TestResolveCellTimeout:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "60")
        assert resolve_cell_timeout(2.5) == 2.5

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "1.5")
        assert resolve_cell_timeout() == 1.5

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(CELL_TIMEOUT_ENV, raising=False)
        assert resolve_cell_timeout() is None

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(ConfigurationError):
            resolve_cell_timeout()
        with pytest.raises(ConfigurationError):
            resolve_cell_timeout(0)

"""Tests for the worker-pool executors and their resolution rules."""

from __future__ import annotations

import os

import pytest

from repro.config import StudyConfig
from repro.errors import ConfigurationError
from repro.runtime.executor import (
    ProcessStudyExecutor,
    SerialExecutor,
    ThreadStudyExecutor,
    make_executor,
    resolve_backend,
    resolve_workers,
)


def _square(x: int) -> int:
    return x * x


class TestMapTasks:
    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ThreadStudyExecutor(3), ProcessStudyExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_submission_order_preserved(self, executor):
        with executor:
            assert executor.map_tasks(_square, list(range(17))) == [
                i * i for i in range(17)
            ]

    def test_pool_reused_across_calls(self):
        with ThreadStudyExecutor(2) as executor:
            executor.map_tasks(_square, [1, 2])
            pool = executor._pool
            executor.map_tasks(_square, [3, 4])
            assert executor._pool is pool

    def test_worker_exception_propagates(self):
        def boom(_x):
            raise ValueError("task failed")

        with ThreadStudyExecutor(2) as executor:
            with pytest.raises(ValueError, match="task failed"):
                executor.map_tasks(boom, [1])

    def test_invalid_worker_count_raises(self):
        with pytest.raises(ConfigurationError):
            ThreadStudyExecutor(0)


class TestResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_beats_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None, StudyConfig(workers=2)) == 5

    def test_config_beats_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None, StudyConfig(workers=2)) == 2
        assert resolve_workers(None, None) == 1

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_backend_auto_depends_on_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_backend(None, workers=1) == "serial"
        assert resolve_backend(None, workers=4) == "thread"

    def test_backend_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert resolve_backend(None, workers=4) == "process"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("gpu")


class TestMakeExecutor:
    def test_single_worker_collapses_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(make_executor(workers=1, backend="thread"), SerialExecutor)
        assert isinstance(make_executor(), SerialExecutor)

    def test_env_selects_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        executor = make_executor()
        assert isinstance(executor, ThreadStudyExecutor)
        assert executor.workers == 3

    def test_config_selects_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        config = StudyConfig(workers=2, executor_backend="process")
        assert isinstance(make_executor(config=config), ProcessStudyExecutor)

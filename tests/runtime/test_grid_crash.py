"""Grid-level crash containment and journal replay."""

from __future__ import annotations

import pytest

from repro.config import get_profile
from repro.reliability import faults
from repro.reliability.wiring import FAULTS_ENV, deactivate_faults
from repro.runtime import grid
from repro.runtime.executor import ProcessStudyExecutor, SerialExecutor
from repro.runtime.journal import CellJournal
from repro.runtime.stats import RuntimeStats

SMOKE = get_profile("smoke")
CODES = ("ABT", "BEER")


def _stringsim_cell(code: str) -> grid.GridCell:
    return grid.GridCell(
        kind="table3",
        matcher_name="StringSim",
        target_code=code,
        config=SMOKE,
        codes=CODES,
    )


def _matchgpt_cell(code: str) -> grid.GridCell:
    return grid.GridCell(
        kind="table4",
        matcher_name="GPT-3.5 Turbo (none)",
        target_code=code,
        config=SMOKE,
        codes=CODES,
        model="gpt-3.5-turbo",
        strategy="none",
    )


@pytest.fixture()
def _crash_plan(monkeypatch):
    """Arm a crash-at-first-LLM-call plan for forked pool workers."""
    deactivate_faults()
    monkeypatch.setenv(FAULTS_ENV, "crash_at=1")
    yield
    deactivate_faults()
    faults.reset_crash_state()


class TestWorkerDeathDegradation:
    def test_crashed_cell_degrades_and_others_complete(self, _crash_plan):
        # The MatchGPT cell's first LLM completion kills its worker; the
        # StringSim cells make no LLM calls and must complete normally.
        cells = [
            _matchgpt_cell("ABT"),
            _stringsim_cell("ABT"),
            _stringsim_cell("BEER"),
        ]
        stats = RuntimeStats(workers=2, backend="process")
        with ProcessStudyExecutor(2) as executor:
            outcomes = grid.run_cells(cells, executor, stats=stats, phase="t")

        assert isinstance(outcomes[0], grid.CellFailure)
        assert outcomes[0].error_type == "WorkerCrashError"
        assert outcomes[0].retryable
        assert isinstance(outcomes[1], grid.CellResult)
        assert isinstance(outcomes[2], grid.CellResult)
        assert len(stats.cell_failures) == 1
        assert stats.cell_failures[0]["error_type"] == "WorkerCrashError"


class TestJournalReplay:
    def test_second_run_replays_without_executing(self, tmp_path):
        cells = [_stringsim_cell("ABT"), _stringsim_cell("BEER")]
        path = tmp_path / "cells.journal.jsonl"

        stats1 = RuntimeStats()
        with CellJournal(path, fresh=True) as journal:
            first = grid.run_cells(
                cells, SerialExecutor(), stats=stats1, phase="t", journal=journal
            )
        assert stats1.resume_counters["cells_computed"] == 2
        assert stats1.resume_counters["cells_replayed"] == 0

        class _ForbiddenExecutor(SerialExecutor):
            def map_tasks(self, fn, tasks, on_result=None, on_crash=None):
                assert not tasks, "replay must not re-execute journaled cells"
                return []

        stats2 = RuntimeStats()
        with CellJournal(path) as journal:
            second = grid.run_cells(
                cells, _ForbiddenExecutor(), stats=stats2, phase="t", journal=journal
            )
        assert second == first
        assert stats2.resume_counters["cells_replayed"] == 2
        assert stats2.resume_counters["cells_computed"] == 0
        assert stats2.journal_active
        assert "resume" in stats2.as_dict()

    def test_partial_journal_runs_only_remainder(self, tmp_path):
        cells = [_stringsim_cell("ABT"), _stringsim_cell("BEER")]
        path = tmp_path / "cells.journal.jsonl"

        with CellJournal(path, fresh=True) as journal:
            grid.run_cells(
                [cells[0]], SerialExecutor(), phase="t", journal=journal
            )

        executed = []

        class _CountingExecutor(SerialExecutor):
            def map_tasks(self, fn, tasks, on_result=None, on_crash=None):
                executed.extend(tasks)
                return super().map_tasks(fn, tasks, on_result, on_crash)

        with CellJournal(path) as journal:
            outcomes = grid.run_cells(
                cells, _CountingExecutor(), phase="t", journal=journal
            )
        assert [c.target_code for c in executed] == ["BEER"]
        assert [o.target_code for o in outcomes] == ["ABT", "BEER"]
        assert all(isinstance(o, grid.CellResult) for o in outcomes)

"""Tests for atomic, checksummed persistence primitives."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import CorruptStateError
from repro.runtime.persist import (
    INTEGRITY_KEY,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    attach_digest,
    canonical_json,
    load_checked_json,
    quarantine_file,
    quarantine_line,
    sha256_hex,
    verify_digest,
)


class TestCanonical:
    def test_key_order_invariant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_sha256_text_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")


class TestAtomicWrite:
    def test_round_trip_and_no_tmp_files(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello")
        atomic_write_text(path, "world")  # overwrite also atomic
        assert path.read_text() == "world"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.bin"
        atomic_write_bytes(path, b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_failed_write_leaves_previous_content(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "original")
        monkeypatch.setattr(os, "replace", _boom)
        with pytest.raises(RuntimeError):
            atomic_write_text(path, "replacement")
        assert path.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def _boom(src, dst):
    raise RuntimeError("injected rename failure")


class TestDigest:
    def test_attach_then_verify(self):
        doc = attach_digest({"x": 1, "y": [1, 2]})
        assert INTEGRITY_KEY in doc
        assert verify_digest(doc)

    def test_footer_is_last_key(self):
        doc = attach_digest({"z": 1, "a": 2})
        assert list(doc)[-1] == INTEGRITY_KEY

    def test_tamper_detected(self):
        doc = attach_digest({"x": 1})
        doc["x"] = 2
        assert not verify_digest(doc)

    def test_footerless_document_verifies(self):
        assert verify_digest({"x": 1})

    def test_malformed_footer_fails(self):
        assert not verify_digest({"x": 1, INTEGRITY_KEY: "nonsense"})

    def test_attach_is_idempotent_over_reattach(self):
        once = attach_digest({"x": 1})
        twice = attach_digest(once)
        assert once == twice


class TestLoadCheckedJson:
    def test_happy_path(self, tmp_path):
        path = atomic_write_json(tmp_path / "doc.json", {"x": 1})
        doc = load_checked_json(path)
        assert doc["x"] == 1

    def test_garbage_is_quarantined(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("{ not json")
        with pytest.raises(CorruptStateError) as info:
            load_checked_json(path)
        assert not path.exists()
        assert info.value.quarantined_to is not None
        assert ".corrupt-" in info.value.quarantined_to

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        path = atomic_write_json(tmp_path / "doc.json", {"x": 1})
        doc = json.loads(path.read_text())
        doc["x"] = 999  # tamper after signing
        path.write_text(json.dumps(doc))
        with pytest.raises(CorruptStateError, match="checksum"):
            load_checked_json(path)
        assert not path.exists()

    def test_quarantine_opt_out_keeps_file(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("garbage")
        with pytest.raises(CorruptStateError):
            load_checked_json(path, quarantine=False)
        assert path.exists()


class TestQuarantine:
    def test_file_moves_to_sidecar(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("x")
        sidecar = quarantine_file(path, timestamp=1000)
        assert not path.exists()
        assert sidecar.name == "bad.json.corrupt-1000"
        assert sidecar.read_text() == "x"

    def test_same_second_collision_gets_suffix(self, tmp_path):
        for content in ("one", "two"):
            path = tmp_path / "bad.json"
            path.write_text(content)
            quarantine_file(path, timestamp=1000)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["bad.json.corrupt-1000", "bad.json.corrupt-1000x"]

    def test_lines_append_to_one_sidecar(self, tmp_path):
        path = tmp_path / "log.jsonl"
        quarantine_line(path, "bad line 1\n", timestamp=1000)
        sidecar = quarantine_line(path, "bad line 2", timestamp=1000)
        assert sidecar.read_text() == "bad line 1\nbad line 2\n"

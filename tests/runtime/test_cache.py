"""Tests for the content-addressed completion cache."""

from __future__ import annotations

import json

import pytest

from repro.errors import CorruptStateError, LLMError
from repro.llm.batching import BatchJob
from repro.llm.client import EchoClient, LLMRequest, LLMResponse
from repro.runtime.cache import (
    CachedClient,
    CompletionCache,
    activate,
    active_cache,
    cache_enabled_from_env,
    completion_key,
    deactivate,
    wrap_client,
)


class _CountingClient(EchoClient):
    """Echo client that counts real completions."""

    def __init__(self, model_name: str = "gpt-4"):
        super().__init__("Yes", model_name=model_name)
        self.n_calls = 0

    def complete(self, request: LLMRequest) -> LLMResponse:
        self.n_calls += 1
        return super().complete(request)


@pytest.fixture(autouse=True)
def _no_active_cache():
    deactivate()
    yield
    deactivate()


class TestCompletionKey:
    def test_stable(self):
        assert completion_key("m", "p") == completion_key("m", "p")

    def test_every_component_matters(self):
        base = completion_key("m", "p", salt="0", strategy="none")
        assert completion_key("m2", "p", salt="0", strategy="none") != base
        assert completion_key("m", "p2", salt="0", strategy="none") != base
        assert completion_key("m", "p", salt="1", strategy="none") != base
        assert completion_key("m", "p", salt="0", strategy="random-selected") != base

    def test_components_are_delimited(self):
        # "ab" + "c" must not collide with "a" + "bc".
        assert completion_key("ab", "c") != completion_key("a", "bc")


class TestCachedClient:
    def test_hit_skips_inner_call(self):
        inner = _CountingClient()
        client = CachedClient(inner, CompletionCache())
        first = client.complete(LLMRequest(prompt="are these the same?"))
        second = client.complete(LLMRequest(prompt="are these the same?"))
        assert inner.n_calls == 1
        assert second == first

    def test_hit_miss_accounting(self):
        cache = CompletionCache()
        client = CachedClient(_CountingClient(), cache)
        client.complete(LLMRequest(prompt="p1"))
        client.complete(LLMRequest(prompt="p2"))
        client.complete(LLMRequest(prompt="p1"))
        assert cache.misses == 2
        assert cache.hits == 1
        assert cache.hit_rate == pytest.approx(1 / 3)
        assert cache.saved_prompt_tokens > 0

    def test_saved_dollars_priced_from_sheet(self):
        # gpt-4 batch price is $0.015 / 1K input tokens.
        cache = CompletionCache()
        client = CachedClient(_CountingClient("gpt-4"), cache)
        response = client.complete(LLMRequest(prompt="one two three four"))
        client.complete(LLMRequest(prompt="one two three four"))
        assert cache.saved_dollars == pytest.approx(
            response.prompt_tokens / 1_000 * 0.015
        )

    def test_unpriced_model_saves_zero_dollars(self):
        cache = CompletionCache()
        client = CachedClient(_CountingClient("no-such-model"), cache)
        client.complete(LLMRequest(prompt="p"))
        client.complete(LLMRequest(prompt="p"))
        assert cache.hits == 1
        assert cache.saved_dollars == 0.0

    def test_distinct_salts_do_not_collide(self):
        cache = CompletionCache()
        seed0, seed1 = _CountingClient(), _CountingClient()
        seed0.cache_salt, seed1.cache_salt = "0", "1"
        CachedClient(seed0, cache).complete(LLMRequest(prompt="p"))
        CachedClient(seed1, cache).complete(LLMRequest(prompt="p"))
        assert cache.misses == 2 and cache.hits == 0


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = CompletionCache()
        client = CachedClient(_CountingClient(), cache)
        client.complete(LLMRequest(prompt="p1"))
        client.complete(LLMRequest(prompt="p2"))
        cache.save(path)

        inner = _CountingClient()
        reloaded = CompletionCache(path=path)
        warm = CachedClient(inner, reloaded)
        warm.complete(LLMRequest(prompt="p1"))
        warm.complete(LLMRequest(prompt="p2"))
        assert inner.n_calls == 0
        assert reloaded.hits == 2

    def test_save_without_path_raises(self):
        with pytest.raises(LLMError):
            CompletionCache().save()

    def test_corrupt_lines_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = CompletionCache()
        client = CachedClient(_CountingClient(), cache)
        client.complete(LLMRequest(prompt="p1"))
        cache.save(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k"}\n')       # missing fields
            handle.write("not json at all\n")    # unparseable

        reloaded = CompletionCache(path=path)
        assert len(reloaded) == 1  # the healthy entry still loads
        assert reloaded.quarantined == 2
        assert len(reloaded.corruption_errors) == 2
        assert all(
            isinstance(e, CorruptStateError) for e in reloaded.corruption_errors
        )
        sidecars = list(tmp_path.glob("cache.jsonl.corrupt-*"))
        assert len(sidecars) == 1
        assert len(sidecars[0].read_text().splitlines()) == 2

    def test_checksum_mismatch_quarantined(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = CompletionCache()
        client = CachedClient(_CountingClient(), cache)
        client.complete(LLMRequest(prompt="p1"))
        cache.save(path)
        # Flip a byte of the stored completion text without touching the
        # line's sha256 self-checksum.
        line = path.read_text().rstrip("\n")
        row = json.loads(line)
        row["text"] = row["text"] + "TAMPERED"
        path.write_text(json.dumps(row) + "\n")

        reloaded = CompletionCache(path=path)
        assert len(reloaded) == 0
        assert reloaded.quarantined == 1
        assert "checksum" in str(reloaded.corruption_errors[0])

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = CompletionCache()
        client = CachedClient(_CountingClient(), cache)
        client.complete(LLMRequest(prompt="p1"))
        cache.save(path)
        cache.save(path)  # overwrite goes through the tmp+rename path too
        assert [p.name for p in tmp_path.iterdir()] == ["cache.jsonl"]


class TestActiveCache:
    def test_wrap_is_identity_without_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_CACHE_PATH", raising=False)
        client = _CountingClient()
        assert wrap_client(client) is client

    def test_wrap_uses_active_cache(self):
        cache = activate(CompletionCache())
        wrapped = wrap_client(_CountingClient())
        assert isinstance(wrapped, CachedClient)
        assert wrapped.cache is cache

    def test_env_switch_creates_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        wrapped = wrap_client(_CountingClient())
        assert isinstance(wrapped, CachedClient)
        assert active_cache() is wrapped.cache
        assert cache_enabled_from_env()

    def test_delta_since_snapshot(self):
        cache = CompletionCache()
        client = CachedClient(_CountingClient(), cache)
        client.complete(LLMRequest(prompt="p"))
        snapshot = cache.counters()
        client.complete(LLMRequest(prompt="p"))
        delta = cache.delta_since(snapshot)
        assert delta["hits"] == 1
        assert delta["misses"] == 0


class TestBatchReportSurfacesCache:
    def test_report_includes_cache_savings(self):
        cache = CompletionCache()
        job = BatchJob(CachedClient(_CountingClient(), cache))
        job.submit_many(["same prompt", "same prompt", "other"])
        job.process()
        report = job.report()
        assert "cache 1/3 hits" in report
        assert "saved" in report

    def test_report_unchanged_without_cache(self):
        job = BatchJob(EchoClient("No"))
        job.submit("hello")
        job.process()
        assert "cache" not in job.report()

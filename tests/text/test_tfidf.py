"""Tests for the TF-IDF model and Ditto-style summariser."""

from __future__ import annotations

import pytest

from repro.text.tfidf import TfIdfModel, TfIdfSummarizer


@pytest.fixture(scope="module")
def model() -> TfIdfModel:
    docs = [
        "sony camera with lens",
        "sony headphones with cable",
        "canon camera body only",
        "rare collectible item",
    ]
    return TfIdfModel().fit(docs)


class TestTfIdfModel:
    def test_is_fitted(self, model):
        assert model.is_fitted
        assert not TfIdfModel().is_fitted

    def test_rare_tokens_get_higher_idf(self, model):
        assert model.idf("collectible") > model.idf("sony")

    def test_unseen_token_gets_max_idf(self, model):
        assert model.idf("neverseen") >= model.idf("collectible")

    def test_vector_normalised(self, model):
        vec = model.vector("sony camera")
        norm = sum(w * w for w in vec.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_vector_of_empty_text(self, model):
        assert model.vector("") == {}

    def test_cosine_identity(self, model):
        assert model.cosine("sony camera", "sony camera") == pytest.approx(1.0)

    def test_cosine_disjoint(self, model):
        assert model.cosine("sony", "canon") == 0.0

    def test_cosine_empty_pair(self, model):
        assert model.cosine("", "") == 1.0
        assert model.cosine("", "sony") == 0.0


class TestSummarizer:
    def test_short_text_unchanged(self, model):
        summarizer = TfIdfSummarizer(model, max_tokens=10)
        assert summarizer.summarize("sony camera") == "sony camera"

    def test_keeps_high_idf_tokens(self, model):
        summarizer = TfIdfSummarizer(model, max_tokens=2)
        summary = summarizer.summarize("sony with rare collectible")
        assert "rare" in summary and "collectible" in summary
        assert "with" not in summary

    def test_preserves_token_order(self, model):
        summarizer = TfIdfSummarizer(model, max_tokens=3)
        summary = summarizer.summarize("collectible item sony camera body")
        tokens = summary.split()
        original = "collectible item sony camera body".split()
        positions = [original.index(t) for t in tokens]
        assert positions == sorted(positions)

    def test_respects_budget(self, model):
        summarizer = TfIdfSummarizer(model, max_tokens=4)
        summary = summarizer.summarize("a b c d e f g h i j collectible rare")
        assert len(summary.split()) == 4

"""Tests for the word tokenizer and hashed-fallback vocabulary."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.text.tokenizer import SPECIALS, Vocabulary, WordTokenizer


@pytest.fixture(scope="module")
def vocab() -> Vocabulary:
    corpus = ["sony camera black", "sony lens kit", "canon camera"] * 5
    return Vocabulary.build(corpus, size=600, n_hash_buckets=64)


class TestWordTokenizer:
    def test_basic(self):
        assert WordTokenizer().tokenize("Sony MDR-7506") == ["sony", "mdr", "-", "7506"]

    def test_empty(self):
        assert WordTokenizer().tokenize("") == []

    def test_unicode_symbols_split(self):
        tokens = WordTokenizer().tokenize("a$b")
        assert tokens == ["a", "$", "b"]


class TestVocabulary:
    def test_specials_occupy_first_slots(self, vocab):
        for i, special in enumerate(SPECIALS):
            assert vocab.id_of(special) == i

    def test_known_token_stable(self, vocab):
        assert vocab.id_of("sony") == vocab.id_of("sony")
        assert "sony" in vocab

    def test_oov_goes_to_hash_bucket(self, vocab):
        oov_id = vocab.id_of("zzzunseen")
        assert oov_id >= vocab.size - vocab.n_hash_buckets
        assert "zzzunseen" not in vocab

    def test_oov_deterministic(self, vocab):
        assert vocab.id_of("qqq123") == vocab.id_of("qqq123")

    def test_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            Vocabulary(["a"], size=10, n_hash_buckets=64)

    def test_encode_shape_and_padding(self, vocab):
        ids = vocab.encode("sony camera", max_len=8)
        assert len(ids) == 8
        assert ids[0] == vocab.cls_id
        assert ids[-1] == vocab.pad_id

    def test_encode_truncates(self, vocab):
        ids = vocab.encode("sony camera black lens kit canon", max_len=4)
        assert len(ids) == 4
        assert vocab.pad_id not in ids

    def test_is_common_tracks_frequency(self):
        corpus = ["the the the the rare"]
        built = Vocabulary.build(corpus, size=400, n_hash_buckets=64)
        assert built.is_common("the")

    @given(st.text(alphabet=st.characters(codec="ascii", categories=["L", "N"]), min_size=1, max_size=12))
    @settings(max_examples=50)
    def test_all_ids_in_range(self, token):
        corpus = ["fixed corpus words"]
        built = Vocabulary.build(corpus, size=400, n_hash_buckets=64)
        assert 0 <= built.id_of(token.lower()) < built.size

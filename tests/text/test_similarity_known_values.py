"""Reference-value tests pinning the similarity functions to the literature."""

from __future__ import annotations

import pytest

from repro.text import similarity as sim


class TestLiteratureValues:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("dixon", "dicksonx", 0.7667),
            ("jellyfish", "smellyfish", 0.8963),
        ],
    )
    def test_jaro_reference(self, a, b, expected):
        assert sim.jaro(a, b) == pytest.approx(expected, abs=1e-3)

    def test_jaro_winkler_reference(self):
        assert sim.jaro_winkler("dixon", "dicksonx") == pytest.approx(0.8133, abs=1e-3)

    def test_levenshtein_saturday_sunday(self):
        assert sim.levenshtein_distance("saturday", "sunday") == 3

    def test_ratcliff_matches_difflib_docs(self):
        # The classic difflib example.
        value = sim.ratcliff_obershelp("abcd", "bcde")
        assert value == pytest.approx(0.75)


class TestOrderingSanity:
    def test_near_duplicates_outscore_strangers(self):
        near = ("sony mdr-7506 headphones", "sony mdr7506 headphone")
        far = ("sony mdr-7506 headphones", "whirlpool dishwasher wdt750")
        for func in (sim.ratcliff_obershelp, sim.levenshtein_similarity,
                     sim.jaro_winkler, sim.jaccard, sim.monge_elkan,
                     sim.cosine_tokens, sim.dice):
            assert func(*near) > func(*far), func.__name__

"""Unit and property tests for the string-similarity library."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import similarity as sim

ALL_SIMILARITIES = [
    sim.ratcliff_obershelp,
    sim.levenshtein_similarity,
    sim.jaro,
    sim.jaro_winkler,
    sim.jaccard,
    sim.overlap_coefficient,
    sim.dice,
    sim.monge_elkan,
    sim.cosine_tokens,
    sim.prefix_similarity,
]

texts = st.text(alphabet=st.characters(codec="ascii"), max_size=30)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert sim.tokenize_words("Sony MDR-V150!") == ["sony", "mdr", "v150"]

    def test_empty(self):
        assert sim.tokenize_words("") == []

    def test_numbers_kept(self):
        assert sim.tokenize_words("price 99.99") == ["price", "99", "99"]


class TestRatcliffObershelp:
    def test_identical(self):
        assert sim.ratcliff_obershelp("abc", "abc") == 1.0

    def test_disjoint(self):
        assert sim.ratcliff_obershelp("aaa", "zzz") == 0.0

    def test_both_empty(self):
        assert sim.ratcliff_obershelp("", "") == 1.0


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [("kitten", "sitting", 3), ("", "abc", 3), ("abc", "", 3), ("abc", "abc", 0),
         ("flaw", "lawn", 2)],
    )
    def test_known_distances(self, a, b, expected):
        assert sim.levenshtein_distance(a, b) == expected

    def test_symmetry(self):
        assert sim.levenshtein_distance("abcd", "badc") == sim.levenshtein_distance("badc", "abcd")

    @given(texts, texts)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b):
        # d(a, b) <= d(a, "") + d("", b) = len(a) + len(b)
        assert sim.levenshtein_distance(a, b) <= len(a) + len(b)

    @given(texts, texts)
    @settings(max_examples=60)
    def test_distance_bounds(self, a, b):
        d = sim.levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b), 0) or (not a and not b and d == 0)


class TestJaro:
    def test_identical(self):
        assert sim.jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert sim.jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_prefix_bonus(self):
        assert sim.jaro_winkler("prefixed", "prefixes") >= sim.jaro("prefixed", "prefixes")

    def test_empty_side(self):
        assert sim.jaro("", "abc") == 0.0


class TestSetSimilarities:
    def test_jaccard_known(self):
        assert sim.jaccard("a b c", "b c d") == pytest.approx(0.5)

    def test_overlap_subset(self):
        # One token set contained in the other -> overlap coefficient 1.
        assert sim.overlap_coefficient("a b", "a b c d") == 1.0

    def test_dice_known(self):
        assert sim.dice("a b", "b c") == pytest.approx(0.5)

    def test_monge_elkan_asymmetric(self):
        # Every token of the short side matches; the reverse need not.
        assert sim.monge_elkan("sony", "sony camera bundle") == pytest.approx(1.0)


class TestNumericSimilarity:
    def test_equal_numbers(self):
        assert sim.numeric_similarity("$99.99", "99.99 usd") == 1.0

    def test_no_number(self):
        assert sim.numeric_similarity("cheap", "99") == 0.0

    def test_relative_decay(self):
        assert sim.numeric_similarity("100", "50") == pytest.approx(0.5)

    def test_negative_numbers(self):
        assert sim.numeric_similarity("-5", "-5") == 1.0


@pytest.mark.parametrize("func", ALL_SIMILARITIES)
class TestCommonProperties:
    def test_identity(self, func):
        assert func("entity matching", "entity matching") == pytest.approx(1.0)

    def test_range_on_samples(self, func):
        for a, b in [("sony mdr", "sony wh"), ("", "x"), ("a", ""), ("ab cd", "cd ab")]:
            value = func(a, b)
            assert 0.0 <= value <= 1.0, (func.__name__, a, b, value)


@pytest.mark.parametrize(
    "func",
    [sim.jaccard, sim.overlap_coefficient, sim.dice, sim.cosine_tokens,
     sim.ratcliff_obershelp],
)
@given(a=texts, b=texts)
@settings(max_examples=40)
def test_similarity_in_unit_interval(func, a, b):
    assert 0.0 <= func(a, b) <= 1.0


@pytest.mark.parametrize("func", [sim.jaccard, sim.dice, sim.cosine_tokens])
@given(a=texts, b=texts)
@settings(max_examples=40)
def test_token_set_symmetry(func, a, b):
    assert func(a, b) == pytest.approx(func(b, a))

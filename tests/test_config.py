"""Tests for study configuration and scale profiles."""

from __future__ import annotations

import pytest

from repro.config import PROFILES, StudyConfig, SurrogateScale, get_profile
from repro.errors import ConfigurationError


class TestSurrogateScale:
    def test_head_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            SurrogateScale(d_model=50, n_heads=4)

    def test_positive_dims_enforced(self):
        with pytest.raises(ConfigurationError):
            SurrogateScale(d_model=0, n_heads=1)


class TestStudyConfig:
    def test_defaults_valid(self):
        config = StudyConfig()
        assert config.test_cap == 1_250  # the MatchGPT down-sampling rule

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seeds": ()},
            {"test_fraction": 0.0},
            {"test_fraction": 1.5},
            {"dataset_scale": 0.0},
            {"test_cap": 0},
            {"train_pair_budget": -1},
            {"epochs": 0},
            {"learning_rate": 0.0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            StudyConfig(**kwargs)

    def test_with_seeds(self):
        config = StudyConfig().with_seeds((7, 8))
        assert config.seeds == (7, 8)

    def test_frozen(self):
        with pytest.raises(Exception):
            StudyConfig().epochs = 99  # type: ignore[misc]


class TestProfiles:
    def test_expected_profiles(self):
        assert set(PROFILES) == {"smoke", "bench", "default", "full"}

    def test_scales_ordered(self):
        smoke, default, full = (get_profile(n) for n in ("smoke", "default", "full"))
        assert smoke.dataset_scale < default.dataset_scale < full.dataset_scale
        assert smoke.train_pair_budget < default.train_pair_budget < full.train_pair_budget

    def test_full_uses_paper_seeds(self):
        assert get_profile("full").seeds == (0, 1, 2, 3, 4)

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError):
            get_profile("turbo")

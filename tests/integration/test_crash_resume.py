"""Kill-and-resume chaos harness for the crash-safe study runtime.

Runs ``repro.study.full_run`` as a real subprocess, kills it mid-grid —
once with a genuine ``SIGKILL`` from outside, once with an injected
``--faults crash_at=N,torn_write=1`` crash that tears the journal's
final record — and asserts that ``--resume`` replays the journaled
cells and produces a ``full_study.json`` byte-identical (modulo the
volatile runtime/timing blocks) to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Document keys that legitimately differ between runs (timings, the
#: runtime accounting block, the integrity footer over both).
VOLATILE_KEYS = {"runtime", "wall_clock_seconds", "_integrity"}

#: Generous per-subprocess ceiling; a smoke two-dataset run takes ~35s.
RUN_TIMEOUT_S = 420


def _command(out: Path, journal: Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro.study.full_run",
        "--profile", "smoke",
        "--codes", "ABT,BEER",
        "--out", str(out),
        "--journal", str(journal),
        *extra,
    ]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Keep the subprocess's reliability configuration hermetic.
    for var in ("REPRO_FAULTS", "REPRO_RETRY", "REPRO_FAIL_FAST", "REPRO_CACHE"):
        env.pop(var, None)
    return env


def _stable(document: dict) -> dict:
    """The run-invariant slice of a full_study document."""
    return {k: v for k, v in document.items() if k not in VOLATILE_KEYS}


def _journaled_cells(journal: Path) -> int:
    """Completed cell records currently in the journal (headers excluded)."""
    if not journal.exists():
        return 0
    raw = journal.read_bytes().decode("utf-8", errors="replace")
    lines = raw.split("\n")[:-1]  # only newline-terminated (complete) lines
    return sum(1 for line in lines if '"kind": "result"' in line
               or '"kind": "failure"' in line)


@pytest.fixture(scope="module")
def reference(tmp_path_factory) -> dict:
    """One uninterrupted journaled smoke run — the ground truth document."""
    directory = tmp_path_factory.mktemp("reference")
    out = directory / "full_study.json"
    completed = subprocess.run(
        _command(out, directory / "study.journal.jsonl"),
        env=_env(), cwd=REPO_ROOT, timeout=RUN_TIMEOUT_S,
        capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return json.loads(out.read_text())


def _resume(out: Path, journal: Path) -> dict:
    """Re-run with ``--resume`` and return the finished document."""
    completed = subprocess.run(
        _command(out, journal, "--resume"),
        env=_env(), cwd=REPO_ROOT, timeout=RUN_TIMEOUT_S,
        capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return json.loads(out.read_text())


class TestSigkillResume:
    def test_killed_run_resumes_byte_identical(self, tmp_path, reference):
        out = tmp_path / "full_study.json"
        journal = tmp_path / "study.journal.jsonl"
        process = subprocess.Popen(
            _command(out, journal), env=_env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + RUN_TIMEOUT_S
            while time.monotonic() < deadline:
                if _journaled_cells(journal) >= 3:
                    break
                if process.poll() is not None:
                    pytest.fail("run finished before it could be killed")
                time.sleep(0.2)
            else:
                pytest.fail("journal never reached 3 records")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup path
                process.kill()
        assert process.returncode == -signal.SIGKILL
        journaled_at_kill = _journaled_cells(journal)
        assert journaled_at_kill >= 3

        document = _resume(out, journal)

        assert _stable(document) == _stable(reference)
        resume = document["runtime"]["resume"]
        reference_total = reference["runtime"]["resume"]["cells_computed"]
        assert resume["cells_replayed"] >= 3
        assert resume["cells_computed"] >= 1
        assert resume["cells_replayed"] + resume["cells_computed"] == reference_total
        assert resume["journal_records_loaded"] == resume["cells_replayed"]

    def test_reference_run_reports_resume_block(self, reference):
        resume = reference["runtime"]["resume"]
        assert resume["cells_replayed"] == 0
        assert resume["cells_computed"] > 0
        assert resume["corrupt_quarantined"] == 0


class TestInjectedCrashTornWrite:
    def test_crash_fault_tears_journal_and_resume_recovers(
        self, tmp_path, reference
    ):
        out = tmp_path / "full_study.json"
        journal = tmp_path / "study.journal.jsonl"
        # The first LLM completion past 60 kills the process; by then the
        # non-LLM Table-3 rows (StringSim, ZeroER, Ditto, ...) have been
        # journaled, and the MatchGPT/Table-4 cells remain.
        crashed = subprocess.run(
            _command(out, journal, "--faults", "crash_at=60,torn_write=1"),
            env=_env(), cwd=REPO_ROOT, timeout=RUN_TIMEOUT_S,
            capture_output=True, text=True,
        )
        assert crashed.returncode == 137, crashed.stderr[-2000:]
        raw = journal.read_bytes()
        assert not raw.endswith(b"\n"), "torn-write mode must tear the tail"
        journaled_at_crash = _journaled_cells(journal)
        assert journaled_at_crash >= 1

        document = _resume(out, journal)

        assert _stable(document) == _stable(reference)
        resume = document["runtime"]["resume"]
        assert resume["cells_replayed"] == journaled_at_crash
        assert resume["cells_computed"] >= 1
        # The torn tail is the expected crash signature, not corruption.
        assert resume["corrupt_quarantined"] == 0

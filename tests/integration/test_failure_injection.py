"""Failure-injection tests: the pipeline fails loudly, not silently."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import StudyConfig
from repro.data import build_dataset
from repro.data.record import Record
from repro.data.pairs import RecordPair
from repro.errors import MatcherError, PromptError, ReproError
from repro.llm import EchoClient, LLMClient, LLMRequest, LLMResponse
from repro.matchers import MatchGPTMatcher, StringSimMatcher


class _GarbageClient(EchoClient):
    """An LLM that answers with unparseable chatter."""

    def __init__(self):
        super().__init__(fixed_answer="as an entity model I cannot decide")


class _FlakyClient(LLMClient):
    """Fails every second request (simulating API errors)."""

    model_name = "flaky"

    def __init__(self):
        self.calls = 0

    def complete(self, request: LLMRequest) -> LLMResponse:
        self.calls += 1
        if self.calls % 2 == 0:
            raise ConnectionError("simulated API outage")
        return LLMResponse("No", self.model_name, 10, 1)


@pytest.fixture(scope="module")
def pairs():
    dataset, _world = build_dataset("BEER", scale=0.1, seed=7)
    return list(dataset.pairs[:6])


@pytest.fixture(scope="module")
def config():
    return StudyConfig(name="fail", seeds=(0,), dataset_scale=0.05)


class TestLLMFailures:
    def test_unparseable_answers_raise_prompt_error(self, pairs, config):
        matcher = MatchGPTMatcher(_GarbageClient()).fit([], config)
        with pytest.raises(PromptError):
            matcher.predict(pairs)

    def test_api_errors_propagate(self, pairs, config):
        matcher = MatchGPTMatcher(_FlakyClient()).fit([], config)
        with pytest.raises(ConnectionError):
            matcher.predict(pairs)

    def test_failures_are_repro_errors_where_promised(self, pairs, config):
        """Library-deliberate failures stay inside the ReproError hierarchy."""
        matcher = MatchGPTMatcher(_GarbageClient()).fit([], config)
        with pytest.raises(ReproError):
            matcher.predict(pairs)


class TestMalformedData:
    def test_mixed_arity_batch_rejected_by_zeroer(self, pairs):
        from repro.data import get_spec
        from repro.matchers import ZeroERMatcher

        bad = RecordPair(
            "bad",
            Record("x", ("only one",), "e-x"),
            Record("y", ("also one",), "e-y"),
            label=0,
        )
        matcher = ZeroERMatcher(get_spec("BEER").attribute_kinds)
        with pytest.raises(MatcherError):
            matcher.predict(pairs + [bad])

    def test_stringsim_tolerates_empty_values(self):
        pair = RecordPair(
            "p", Record("a", ("", ""), "e1"), Record("b", ("", ""), "e2"), label=0
        )
        predictions = StringSimMatcher().predict([pair])
        assert predictions.shape == (1,)

    def test_unicode_values_survive_the_pipeline(self):
        pair = RecordPair(
            "p",
            Record("a", ("café München — ★", "99€"), "e1"),
            Record("b", ("cafe munchen", "99"), "e1"),
            label=1,
        )
        StringSimMatcher().predict([pair])
        from repro.data.serialize import fingerprint_serialized, serialize_record

        assert fingerprint_serialized(serialize_record(pair.left))


class TestNumericalEdges:
    def test_gmm_on_near_constant_scores(self):
        from repro.matchers.gmm import TwoComponentGMM

        X = np.full((30, 4), 0.5) + np.random.default_rng(0).normal(0, 1e-9, (30, 4))
        init = np.full(30, 0.5)
        init[:3] = 0.9
        gmm = TwoComponentGMM().fit(X, init)
        assert np.isfinite(gmm.match_posterior(X)).all()

    def test_training_with_extreme_learning_rate_stays_finite(self, config):
        """Gradient clipping keeps even absurd LRs from producing NaNs."""
        from repro.models import EncoderClassifier, train_classifier
        from repro.models.training import EncodedPairs
        from dataclasses import replace

        rng = np.random.default_rng(0)
        model = EncoderClassifier(64, 16, 1, 2, 32, 8, rng)
        data = EncodedPairs(
            ids=rng.integers(0, 64, size=(16, 8)),
            pad_mask=np.zeros((16, 8), dtype=bool),
            labels=rng.integers(0, 2, size=16).astype(np.int64),
        )
        hot = replace(config, learning_rate=5.0, epochs=2)
        losses = train_classifier(model, data, hot, rng)
        assert all(np.isfinite(losses))
        for p in model.parameters():
            assert np.isfinite(p.data).all()

"""Integration tests: the full pipeline wired end to end.

Everything here runs at smoke scale — the goal is exercising real
cross-module paths (generator -> blocker -> matcher -> metrics -> study
driver), not benchmark-quality numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DemonstrationStrategy,
    LeaveOneOutRunner,
    MatchGPTMatcher,
    Record,
    RecordPair,
    SimulatedLLM,
    StringSimMatcher,
    StudyConfig,
    SurrogateScale,
    TokenBlocker,
    UsageMeter,
    build_all_datasets,
    f1_score,
    get_llm_profile,
)
from repro.matchers import DittoMatcher


@pytest.fixture(scope="module")
def world_and_datasets():
    return build_all_datasets(scale=0.05, seed=7)


@pytest.fixture(scope="module")
def config():
    return StudyConfig(
        name="integration", seeds=(0, 1), test_fraction=0.5,
        train_pair_budget=150, epochs=2, dataset_scale=0.05,
        surrogate=SurrogateScale(d_model=16, n_layers=1, n_heads=2, d_ff=32,
                                 max_len=32, vocab_size=1024),
    )


class TestBlockThenMatch:
    def test_pipeline_on_benchmark_records(self, world_and_datasets):
        datasets, world = world_and_datasets
        dataset = datasets["DBAC"]
        left = [p.left for p in dataset.pairs][:80]
        right = [p.right for p in dataset.pairs][:80]
        blocked = TokenBlocker(min_shared=2).block(left, right)
        assert blocked.candidates

        candidates = [
            RecordPair(f"c{i}", a, b, label=int(a.entity_id == b.entity_id))
            for i, (a, b) in enumerate(blocked.candidates)
        ]
        client = SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0)
        matcher = MatchGPTMatcher(client)
        matcher._fitted = True  # no demonstrations -> no transfer needed
        predictions = matcher.predict(candidates, serialization_seed=0)
        labels = np.array([p.label for p in candidates])
        assert f1_score(labels, predictions) > 60.0


class TestLeaveOneOutWithLLM:
    def test_budgeted_llm_study(self, world_and_datasets, config):
        """A leave-one-out run over a metered simulated GPT-4."""
        datasets, world = world_and_datasets
        meter = UsageMeter(price_per_1k_tokens=0.015)
        runner = LeaveOneOutRunner(datasets, config, codes=("ABT", "DBAC", "BEER"))

        def factory(code: str):
            client = SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0)
            return MatchGPTMatcher(client, meter=meter)

        result = runner.run(factory, "MatchGPT[GPT-4]", params_millions=1_760_000)
        assert result.mean_f1 > 60.0
        assert meter.n_requests > 0
        assert meter.dollars_spent > 0.0

    def test_demonstrations_change_prompts_and_costs(self, world_and_datasets, config):
        datasets, world = world_and_datasets
        runner = LeaveOneOutRunner(datasets, config, codes=("ABT", "DBAC", "BEER"))
        tokens = {}
        for strategy in (DemonstrationStrategy.NONE, DemonstrationStrategy.RANDOM):
            meter = UsageMeter()

            def factory(code: str, strategy=strategy, meter=meter):
                client = SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0)
                return MatchGPTMatcher(client, demo_strategy=strategy, meter=meter)

            runner.run_target(factory, "ABT")
            tokens[strategy.value] = meter.prompt_tokens
        assert tokens["random-selected"] > 2 * tokens["none"]


class TestTrainedMatcherLoo:
    def test_ditto_full_cycle(self, world_and_datasets, config):
        datasets, _world = world_and_datasets
        runner = LeaveOneOutRunner(datasets, config, codes=("ABT", "DBAC", "BEER"))
        result = runner.run_target(lambda code: DittoMatcher(), "DBAC")
        assert len(result.scores) == 2
        assert 0.0 <= result.mean_f1 <= 100.0

    def test_baseline_comparison_shape(self, world_and_datasets, config):
        """StringSim stays below the simulated GPT-4 on every target."""
        datasets, world = world_and_datasets
        runner = LeaveOneOutRunner(datasets, config, codes=("ABT", "DBAC", "BEER"))
        string_sim = runner.run(lambda code: StringSimMatcher(), "StringSim")

        def gpt4_factory(code: str):
            return MatchGPTMatcher(SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0))

        gpt4 = runner.run(gpt4_factory, "MatchGPT[GPT-4]")
        assert gpt4.mean_f1 > string_sim.mean_f1


class TestCrossDatasetRestrictions:
    def test_serialization_never_leaks_column_names(self, world_and_datasets):
        """Restriction 2: serialised records carry values only."""
        from repro.data.serialize import serialize_pair

        datasets, _world = world_and_datasets
        for dataset in datasets.values():
            text = serialize_pair(dataset.pairs[0], seed=0)
            for banned in ("title", "price:", "name:", "author:", "column"):
                assert banned not in text.lower().replace("val ", "")
                break  # spot-check one banned marker per dataset

    def test_record_entity_ids_not_in_serialization(self, world_and_datasets):
        from repro.data.serialize import serialize_pair

        datasets, _world = world_and_datasets
        pair = datasets["ABT"].pairs[0]
        text = serialize_pair(pair)
        assert pair.left.entity_id not in text
        assert pair.right.entity_id not in text

"""The serving chaos drill: a routed service survives a misbehaving tier.

One deterministic scenario on a fake clock, four phases driven by
reassigning the :class:`~repro.reliability.faults.FaultInjector` plan
under a live routed :class:`~repro.serving.service.MatchService`:

1. **healthy** — mid-band pairs escalate to the LLM tier and succeed;
2. **flap** — the tier throws transient errors: requests degrade with
   ``backend_failed`` until the breaker opens, then with
   ``breaker_open`` and *zero* calls against the dead tier;
3. **freeze** — the tier answers but only after a long injected stall:
   slow-call reclassification trips the breaker all the same;
4. **recovery** — after each cooldown a half-open probe succeeds and
   the breaker closes, restoring escalation.

The drill's acceptance property is that every request in every phase
gets a structured :class:`~repro.serving.service.MatchResponse` — no
exception ever reaches the caller — and that the full breaker history
is visible on every operator surface at once: ``/metrics`` JSON, the
Prometheus rendering, ``/healthz`` causes, and ``breaker.transition``
obs spans.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import StudyConfig
from repro.llm import EchoClient
from repro.matchers import MatchGPTMatcher
from repro.matchers.base import Matcher
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.reliability.breaker import (
    CircuitBreaker,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.reliability.clock import FakeClock
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.routing import MatchRouter, RoutedBackend
from repro.serving.service import MatchService


class _MidScorer(Matcher):
    """Scores every pair mid-band, forcing an escalation request."""

    name = "mid"
    display_name = "Mid"

    def _predict(self, pairs, serialization_seed):
        return np.zeros(len(pairs), dtype=np.int64)

    def match_scores(self, pairs, serialization_seed=None):
        return np.full(len(pairs), 0.5)


class _Drill:
    """The assembled stack plus a tiny request driver."""

    def __init__(self, tmp_path) -> None:
        self.clock = FakeClock()
        self.injector = FaultInjector(
            EchoClient(fixed_answer="Yes"), plan=FaultPlan(),
            clock=self.clock, count=False,
        )
        authority = MatchGPTMatcher(self.injector).fit(
            [], StudyConfig(name="chaos", seeds=(0,), dataset_scale=0.05)
        )
        self.breaker = CircuitBreaker(
            name="expensive",
            min_requests=3,
            failure_threshold=1.0,
            open_duration_s=10.0,
            half_open_probes=1,
            slow_call_threshold_s=1.0,
            clock=self.clock,
            count=False,
        )
        router = MatchRouter(
            backends=[
                RoutedBackend(
                    name="cheap", matcher=_MidScorer(), low=0.3, high=0.7
                ),
                RoutedBackend(
                    name="expensive", matcher=authority, breaker=self.breaker
                ),
            ],
            clock=self.clock,
        )
        # Unstarted service: deterministic inline dispatch, no threads.
        self.service = MatchService(
            _MidScorer(), router=router, clock=self.clock
        )
        self.tracer = install_tracer(Tracer(tmp_path / "chaos_trace.jsonl"))
        self._sequence = 0

    def request(self):
        """One unique in-band request (a fresh prompt key every time)."""
        self._sequence += 1
        value = f"acme widget {self._sequence}"
        return self.service.match_pair([value], [value])


@pytest.fixture()
def drill(tmp_path):
    d = _Drill(tmp_path)
    yield d
    uninstall_tracer()


class TestServingChaosDrill:
    def test_flap_freeze_and_recovery_without_a_single_error(self, drill):
        responses = []

        # Phase 1 — healthy: escalations reach the LLM tier and match.
        for _ in range(2):
            responses.append(drill.request())
        assert all(r.backend == "expensive" for r in responses)
        assert all(r.matched for r in responses)
        assert drill.breaker.state == STATE_CLOSED

        # Phase 2 — flap: the tier throws on every call.  Requests
        # degrade to the band midpoint instead of erroring, and the
        # third consecutive failure opens the breaker.  (The healthy
        # successes first age out of the rolling window, so the failure
        # rate the breaker sees is the flap's, not the mixture's.)
        drill.clock.advance(drill.breaker.window_s)
        drill.injector.plan = FaultPlan(transient_rate=1.0)
        flapped = [drill.request() for _ in range(3)]
        responses.extend(flapped)
        assert all(r.backend_failed for r in flapped)
        assert all(r.backend == "cheap" for r in flapped)
        assert drill.breaker.state == STATE_OPEN

        # While open, traffic degrades without touching the dead tier.
        calls_when_opened = drill.injector._attempts.copy()
        opened = [drill.request() for _ in range(2)]
        responses.extend(opened)
        assert all(r.breaker_open for r in opened)
        assert drill.injector._attempts == calls_when_opened

        # The open breaker is a health cause, not an availability loss.
        health = drill.service.healthz()
        assert health["status"] == "degraded"
        assert "breaker_open:expensive" in health["degraded"]["causes"]
        assert drill.service.metrics()["resilience"]["breakers"][
            "expensive"
        ]["state"] == STATE_OPEN
        assert 'breaker_state{backend="expensive"} 1' in (
            drill.service.prometheus_metrics()
        )

        # Phase 3 — recovery: the fault clears, the cooldown elapses,
        # and a single successful probe closes the breaker.
        drill.injector.plan = FaultPlan()
        drill.clock.advance(10.0)
        assert drill.breaker.state == STATE_HALF_OPEN
        probe = drill.request()
        responses.append(probe)
        assert probe.backend == "expensive"
        assert drill.breaker.state == STATE_CLOSED

        # Phase 4 — freeze: the tier still answers, but each call stalls
        # far past the slow-call threshold; the stall is reclassified as
        # failure and the breaker opens again without a single error.
        drill.injector.plan = FaultPlan(latency_rate=1.0, latency_s=5.0)
        frozen = [drill.request() for _ in range(3)]
        responses.extend(frozen)
        assert all(r.backend == "expensive" for r in frozen)
        assert all(r.matched for r in frozen)
        assert drill.breaker.state == STATE_OPEN
        assert drill.breaker.counters["slow_calls"] == 3
        shed = drill.request()
        responses.append(shed)
        assert shed.breaker_open

        # Final recovery: unfreeze, cool down, probe, closed again.
        drill.injector.plan = FaultPlan()
        drill.clock.advance(10.0)
        final = drill.request()
        responses.append(final)
        assert final.backend == "expensive"
        assert drill.breaker.state == STATE_CLOSED

        # The headline property: every request in every phase got a
        # structured answer — nothing raised, nothing hung, no error
        # or timeout was ever counted.
        assert len(responses) == 13
        counters = drill.service.stats.counters
        assert counters["requests"] == 13
        assert counters["errors"] == 0
        assert counters["timeouts"] == 0
        assert counters["backend_failed"] == 3
        assert counters["breaker_open"] == 3

        # The full open/probe/close history is on the wire: twice
        # around the state machine, in order.
        states = [s for _t, s in drill.breaker.transitions]
        assert states == [
            STATE_OPEN, STATE_HALF_OPEN, STATE_CLOSED,
            STATE_OPEN, STATE_HALF_OPEN, STATE_CLOSED,
        ]
        assert drill.service.metrics()["resilience"]["breakers"][
            "expensive"
        ]["state"] == STATE_CLOSED
        assert 'breaker_state{backend="expensive"} 0' in (
            drill.service.prometheus_metrics()
        )

        # ...and in the trace: every transition emitted an obs span.
        drill.tracer.flush()
        records = [
            json.loads(line)
            for line in drill.tracer.path.read_text().splitlines()
        ]
        transitions = [
            r["attrs"]["to"]
            for r in records
            if r["kind"] == "span" and r["name"] == "breaker.transition"
        ]
        assert transitions == states

"""Shape checks on the saved full-study results (results/full_study.json).

These tests validate the artifact produced by
``python -m repro.study.full_run`` — the source of EXPERIMENTS.md's
measured numbers.  They skip when no run has been performed yet, so a
fresh checkout still has a green suite.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.data.registry import DATASET_CODES
from repro.study.paper_targets import TABLE3_F1
from repro.study.roster import ROSTER_ORDER

_ARTIFACT = Path(__file__).resolve().parent.parent.parent / "results" / "full_study.json"

pytestmark = pytest.mark.skipif(
    not _ARTIFACT.exists(), reason="run `python -m repro.study.full_run` first"
)


@pytest.fixture(scope="module")
def document() -> dict:
    return json.loads(_ARTIFACT.read_text())


class TestArtifactStructure:
    def test_all_tables_present(self, document):
        for key in ("table3", "table4", "table5", "table6", "figure3", "figure4"):
            assert key in document, key

    def test_table3_covers_full_roster_and_targets(self, document):
        per_dataset = document["table3"]["per_dataset"]
        assert set(per_dataset) == set(ROSTER_ORDER)
        for matcher, row in per_dataset.items():
            assert set(row) == set(DATASET_CODES), matcher


class TestEnvelopeFidelity:
    def test_simulated_rows_track_paper(self, document):
        """Calibrated envelopes stay within a few points of Table 3."""
        means = document["table3"]["mean"]
        for matcher in ("MatchGPT[GPT-4]", "MatchGPT[Beluga2]", "Jellyfish",
                        "MatchGPT[Mixtral-8x7B]"):
            paper = sum(TABLE3_F1[matcher].values()) / 11
            assert abs(means[matcher] - paper) < 6.0, matcher

    def test_prompted_ranking_preserved(self, document):
        """GPT-4 > GPT-4o-Mini > Beluga2 > SOLAR-ish > Mixtral > GPT-3.5."""
        means = document["table3"]["mean"]
        assert means["MatchGPT[GPT-4]"] > means["MatchGPT[Beluga2]"]
        assert means["MatchGPT[Beluga2]"] > means["MatchGPT[GPT-3.5-Turbo]"]
        assert means["MatchGPT[GPT-4o-Mini]"] > means["MatchGPT[Mixtral-8x7B]"]


class TestDemonstrationShape:
    def test_table4_reproduces_paper_directions(self, document):
        means = document["table4"]["mean"]
        # Hand-picked OOD demos hurt GPT-3.5; random demos recover.
        assert means["gpt-3.5-turbo|hand-picked"] < means["gpt-3.5-turbo|none"]
        assert means["gpt-3.5-turbo|random-selected"] > means["gpt-3.5-turbo|hand-picked"]
        # GPT-4 is at worst mildly affected.
        assert means["gpt-4|random-selected"] > means["gpt-4|none"] - 2.0


class TestFindingsShape:
    def test_finding5_no_rejection(self, document):
        assert document["findings"]["any_rejection"] is False

    def test_finding6_weak_correlation(self, document):
        assert document["findings"]["mean_abs_rho"] < 0.45

"""Shared fixtures: tiny datasets and configs sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# A single shared CPU core makes wall-clock deadlines meaningless; cap
# example counts instead so the property tests stay fast but deterministic.
settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")

from repro.config import StudyConfig, SurrogateScale
from repro.data import EMDataset, build_dataset
from repro.data.record import Record
from repro.data.pairs import RecordPair


@pytest.fixture(scope="session")
def tiny_config() -> StudyConfig:
    """A deliberately minimal config so fit/predict cycles stay fast."""
    return StudyConfig(
        name="test",
        seeds=(0, 1),
        test_fraction=1.0,
        train_pair_budget=120,
        epochs=2,
        batch_size=16,
        dataset_scale=0.05,
        surrogate=SurrogateScale(
            d_model=16, n_layers=1, n_heads=2, d_ff=32, max_len=32, vocab_size=1024
        ),
    )


@pytest.fixture(scope="session")
def abt_dataset() -> EMDataset:
    dataset, _world = build_dataset("ABT", scale=0.05, seed=7)
    return dataset


@pytest.fixture(scope="session")
def abt_world():
    _dataset, world = build_dataset("ABT", scale=0.05, seed=7)
    return world


@pytest.fixture(scope="session")
def small_datasets() -> dict[str, EMDataset]:
    """Three tiny benchmarks covering distinct domains."""
    return {
        code: build_dataset(code, scale=0.05, seed=7)[0]
        for code in ("ABT", "DBAC", "BEER")
    }


def make_pair(
    left_values: tuple[str, ...],
    right_values: tuple[str, ...],
    label: int,
    pair_id: str = "t1",
    same_entity: bool | None = None,
) -> RecordPair:
    """Hand-build a record pair for unit tests."""
    if same_entity is None:
        same_entity = label == 1
    left = Record(f"{pair_id}-l", left_values, "e1", source="left")
    right = Record(
        f"{pair_id}-r", right_values, "e1" if same_entity else "e2", source="right"
    )
    return RecordPair(pair_id, left, right, label=label)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)

"""Tests for prompt building, parsing and demonstration selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset
from repro.errors import PromptError
from repro.llm.prompts import (
    Demonstration,
    build_match_prompt,
    parse_answer,
    parse_match_prompt,
    select_hand_picked,
    select_random,
)


class TestBuildAndParse:
    def test_roundtrip_no_demos(self):
        prompt = build_match_prompt("val sony mdr", "val sony wh")
        parsed = parse_match_prompt(prompt)
        assert parsed.query_left == "val sony mdr"
        assert parsed.query_right == "val sony wh"
        assert parsed.demonstrations == ()

    def test_roundtrip_with_demos(self):
        demos = (
            Demonstration("val a", "val b", 1),
            Demonstration("val c", "val d", 0),
        )
        prompt = build_match_prompt("val q1", "val q2", demos)
        parsed = parse_match_prompt(prompt)
        assert parsed.demonstrations == demos
        assert parsed.query_left == "val q1"

    def test_header_present(self):
        prompt = build_match_prompt("val x", "val y")
        assert "same real-world entity" in prompt
        assert prompt.endswith("Answer:")

    def test_multiline_record_raises(self):
        with pytest.raises(PromptError):
            build_match_prompt("line\nbreak", "val y")

    def test_prompt_without_query_raises(self):
        with pytest.raises(PromptError):
            parse_match_prompt("no entities here")

    def test_double_query_raises(self):
        block = "Entity 1: 'a'\nEntity 2: 'b'\nAnswer:"
        with pytest.raises(PromptError):
            parse_match_prompt(block + "\n\n" + block)


class TestParseAnswer:
    @pytest.mark.parametrize(
        "text,expected",
        [("Yes", 1), ("no", 0), ("Yes.", 1), ("  NO  ", 0),
         ("I think the answer is yes", 1), ("Answer: no, they differ", 0)],
    )
    def test_robust_parsing(self, text, expected):
        assert parse_answer(text) == expected

    def test_garbage_raises(self):
        with pytest.raises(PromptError):
            parse_answer("maybe")


@pytest.fixture(scope="module")
def transfer():
    return [build_dataset(code, scale=0.05, seed=7)[0] for code in ("DBAC", "BEER")]


class TestHandPicked:
    def test_one_match_two_nonmatches(self, transfer):
        demos = select_hand_picked(transfer)
        assert len(demos) == 3
        assert sum(d.label for d in demos) == 1

    def test_deterministic(self, transfer):
        assert select_hand_picked(transfer) == select_hand_picked(transfer)

    def test_source_is_alphabetically_first(self, transfer):
        demos = select_hand_picked(transfer)
        # BEER < DBAC alphabetically; beer demos mention breweries.
        text = " ".join(d.left_text for d in demos)
        assert any(word in text for word in ("brewing", "brewery", "ales", "beer"))

    def test_empty_transfer_raises(self):
        with pytest.raises(PromptError):
            select_hand_picked([])


class TestRandom:
    def test_count_and_origin(self, transfer):
        rng = np.random.default_rng(0)
        demos = select_random(transfer, rng)
        assert len(demos) == 3

    def test_seeded_reproducible(self, transfer):
        a = select_random(transfer, np.random.default_rng(5))
        b = select_random(transfer, np.random.default_rng(5))
        assert a == b

    def test_varies_across_draws(self, transfer):
        rng = np.random.default_rng(0)
        draws = {select_random(transfer, rng) for _ in range(5)}
        assert len(draws) > 1

    def test_insufficient_pool_raises(self, transfer):
        with pytest.raises(PromptError):
            select_random(transfer, np.random.default_rng(0), n_demos=10**9)

"""Tests for the LLM client abstraction and usage metering."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, LLMError
from repro.llm.client import EchoClient, LLMRequest, LLMResponse, MeteredClient, UsageMeter


class TestLLMRequest:
    def test_empty_prompt_raises(self):
        with pytest.raises(LLMError):
            LLMRequest(prompt="")

    def test_bad_max_tokens_raises(self):
        with pytest.raises(LLMError):
            LLMRequest(prompt="x", max_tokens=0)


class TestEchoClient:
    def test_fixed_answer(self):
        client = EchoClient("Yes")
        response = client.complete(LLMRequest(prompt="anything"))
        assert response.text == "Yes"
        assert response.prompt_tokens > 0

    def test_total_tokens(self):
        response = LLMResponse("No", "echo", prompt_tokens=10, completion_tokens=1)
        assert response.total_tokens == 11


class TestUsageMeter:
    def test_accumulates(self):
        meter = UsageMeter(price_per_1k_tokens=0.01)
        meter.record(LLMResponse("No", "m", 500, 1))
        meter.record(LLMResponse("No", "m", 500, 1))
        assert meter.n_requests == 2
        assert meter.prompt_tokens == 1000
        assert meter.dollars_spent == pytest.approx(0.01)

    def test_output_tokens_not_priced(self):
        """Section 2.3: only input cost counts for sequence classification."""
        meter = UsageMeter(price_per_1k_tokens=1.0)
        meter.record(LLMResponse("No", "m", 0, 1_000_000))
        assert meter.dollars_spent == 0.0

    def test_token_budget_enforced(self):
        meter = UsageMeter(token_budget=100)
        with pytest.raises(BudgetExceededError):
            meter.record(LLMResponse("No", "m", 200, 1))

    def test_dollar_budget_enforced(self):
        meter = UsageMeter(price_per_1k_tokens=1.0, dollar_budget=0.5)
        meter.record(LLMResponse("No", "m", 400, 1))
        with pytest.raises(BudgetExceededError):
            meter.record(LLMResponse("No", "m", 400, 1))

    def test_negative_price_raises(self):
        with pytest.raises(LLMError):
            UsageMeter(price_per_1k_tokens=-1.0)


class TestMeteredClient:
    def test_records_every_call(self):
        meter = UsageMeter()
        client = MeteredClient(EchoClient("Yes"), meter)
        client.complete(LLMRequest(prompt="one two three"))
        client.complete(LLMRequest(prompt="four"))
        assert meter.n_requests == 2
        assert meter.prompt_tokens == 4

"""Tests for the RAG demonstration retriever (the Section-5.1 extension)."""

from __future__ import annotations

import pytest

from repro.data import build_dataset, serialize_record
from repro.errors import PromptError
from repro.llm import DemonstrationRetriever


@pytest.fixture(scope="module")
def transfer():
    return [build_dataset(c, scale=0.05, seed=7)[0] for c in ("WDC", "DBAC")]


@pytest.fixture(scope="module")
def retriever(transfer):
    return DemonstrationRetriever(transfer)


class TestRetriever:
    def test_returns_requested_count(self, retriever):
        demos = retriever.retrieve("val sony camera", "val sony camera kit")
        assert len(demos) == 3

    def test_label_diversity_forced(self, retriever):
        demos = retriever.retrieve("val sony camera", "val canon camera")
        assert {d.label for d in demos} == {0, 1}

    def test_retrieves_relevant_domain(self, retriever, transfer):
        """A citation-like query retrieves citation demos, not products."""
        citation = transfer[1].pairs[0]
        demos = retriever.retrieve(
            serialize_record(citation.left), serialize_record(citation.right)
        )
        from repro.data.generators.vocabularies import VENUES

        text = " ".join(f"{d.left_text} {d.right_text}" for d in demos)
        # Citation records carry venue names; product records do not.
        assert any(venue in text for venue in VENUES)

    def test_deterministic(self, retriever):
        a = retriever.retrieve("val alpha", "val beta")
        b = retriever.retrieve("val alpha", "val beta")
        assert a == b

    def test_empty_transfer_raises(self):
        with pytest.raises(PromptError):
            DemonstrationRetriever([])


class TestRetrievedStrategyEndToEnd:
    def test_matchgpt_uses_retrieved_demos(self, transfer):
        from repro.config import get_profile as cfg
        from repro.llm import DemonstrationStrategy, SimulatedLLM
        from repro.llm import get_profile as llm_profile
        from repro.matchers import MatchGPTMatcher

        dataset, world = build_dataset("ABT", scale=0.05, seed=7)
        client = SimulatedLLM(llm_profile("gpt-4"), world, seed=0)
        matcher = MatchGPTMatcher(
            client, demo_strategy=DemonstrationStrategy.RETRIEVED
        ).fit(transfer, cfg("smoke"))
        prompt = matcher.prompt_for(dataset.pairs[0])
        assert prompt.count("Answer:") == 4  # three demos + query

    def test_retrieved_without_transfer_raises(self):
        from repro.config import get_profile as cfg
        from repro.errors import MatcherError
        from repro.llm import DemonstrationStrategy, EchoClient
        from repro.matchers import MatchGPTMatcher

        matcher = MatchGPTMatcher(
            EchoClient("No"), demo_strategy=DemonstrationStrategy.RETRIEVED
        )
        with pytest.raises(MatcherError):
            matcher.fit([], cfg("smoke"))

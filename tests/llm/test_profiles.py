"""Tests for the LLM behaviour profiles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.llm.profiles import LLM_PROFILES, get_profile
from repro.llm.prompts import DemonstrationStrategy
from repro.study.paper_targets import TABLE3_F1, TABLE4_F1


class TestProfiles:
    def test_seven_profiles(self):
        assert len(LLM_PROFILES) == 7

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_profile("gpt-5")

    def test_targets_match_table3(self):
        profile = get_profile("gpt-4")
        for code, value in TABLE3_F1["MatchGPT[GPT-4]"].items():
            assert profile.target_f1(code, DemonstrationStrategy.NONE) == value

    def test_demo_strategies_match_table4(self):
        profile = get_profile("gpt-3.5-turbo")
        hand = TABLE4_F1[("gpt-3.5-turbo", "hand-picked")]
        for code, value in hand.items():
            assert profile.target_f1(code, DemonstrationStrategy.HAND_PICKED) == value

    def test_open_models_fall_back_to_none(self):
        profile = get_profile("mixtral-8x7b")
        none = profile.target_f1("ABT", DemonstrationStrategy.NONE)
        assert profile.target_f1("ABT", DemonstrationStrategy.RANDOM) == none

    def test_unknown_dataset_falls_back_to_mean(self):
        profile = get_profile("gpt-4")
        fallback = profile.target_f1("CUSTOM", DemonstrationStrategy.NONE)
        values = list(TABLE3_F1["MatchGPT[GPT-4]"].values())
        assert fallback == pytest.approx(sum(values) / len(values))

    def test_demonstrations_hurt_weak_models_on_average(self):
        """The Table-4 envelope: hand-picked demos hurt GPT-3.5."""
        profile = get_profile("gpt-3.5-turbo")
        codes = TABLE3_F1["MatchGPT[GPT-3.5-Turbo]"].keys()
        none_mean = sum(profile.target_f1(c, DemonstrationStrategy.NONE) for c in codes)
        hand_mean = sum(profile.target_f1(c, DemonstrationStrategy.HAND_PICKED) for c in codes)
        assert hand_mean < none_mean

    def test_demonstrations_help_gpt4_on_average(self):
        profile = get_profile("gpt-4")
        codes = TABLE3_F1["MatchGPT[GPT-4]"].keys()
        none_mean = sum(profile.target_f1(c, DemonstrationStrategy.NONE) for c in codes)
        random_mean = sum(profile.target_f1(c, DemonstrationStrategy.RANDOM) for c in codes)
        assert random_mean > none_mean

"""Token-cost behaviour of the prompt formats (feeds the RQ3 analysis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset
from repro.llm import (
    Demonstration,
    build_match_prompt,
    count_tokens,
    select_random,
)


@pytest.fixture(scope="module")
def transfer():
    return [build_dataset(c, scale=0.05, seed=7)[0] for c in ("WDC", "DBAC")]


class TestPromptCosts:
    def test_demonstrations_multiply_prompt_length(self, transfer):
        demos = select_random(transfer, np.random.default_rng(0))
        bare = build_match_prompt("val sony mdr", "val sony mdr v2")
        with_demos = build_match_prompt("val sony mdr", "val sony mdr v2", demos)
        assert count_tokens(with_demos) > 2 * count_tokens(bare)

    def test_header_cost_is_fixed(self):
        a = build_match_prompt("val x", "val y")
        b = build_match_prompt("val xx", "val yy")
        # Longer records -> proportionally more tokens, same header.
        assert count_tokens(b) >= count_tokens(a)

    def test_output_is_one_word(self):
        """The study's cost model assumes single-word outputs (Sec 2.3)."""
        for answer in ("Yes", "No"):
            assert count_tokens(answer) == 1

    def test_typical_pair_prompt_budget(self, transfer):
        """Serialised pair prompts stay in the low hundreds of tokens."""
        pair = transfer[0].pairs[0]
        from repro.data.serialize import serialize_record

        prompt = build_match_prompt(
            serialize_record(pair.left), serialize_record(pair.right)
        )
        assert 30 < count_tokens(prompt) < 400


class TestDemonstrationRendering:
    def test_answer_matches_label(self):
        assert Demonstration("val a", "val b", 1).render().endswith("Answer: Yes")
        assert Demonstration("val a", "val b", 0).render().endswith("Answer: No")

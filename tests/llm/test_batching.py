"""Tests for the batch-API-shaped submission wrapper."""

from __future__ import annotations

import pytest

from repro.errors import LLMError, PromptError
from repro.llm.batching import BatchJob
from repro.llm.client import EchoClient, LLMClient, LLMRequest, LLMResponse, UsageMeter
from repro.runtime.executor import ProcessStudyExecutor, ThreadStudyExecutor


class _PickyClient(LLMClient):
    """Rejects prompts containing 'bad'."""

    model_name = "picky"

    def complete(self, request: LLMRequest) -> LLMResponse:
        if "bad" in request.prompt:
            raise PromptError("refused")
        return LLMResponse("Yes", self.model_name, 5, 1)


class TestBatchJob:
    def test_submit_process_collect(self):
        job = BatchJob(EchoClient("No"))
        job.submit_many(["p1", "p2", "p3"])
        job.process()
        assert job.texts() == ["No", "No", "No"]
        assert job.n_failed == 0

    def test_per_request_failures_captured(self):
        job = BatchJob(_PickyClient())
        job.submit_many(["good one", "a bad one", "another good"])
        job.process()
        assert job.n_failed == 1
        assert job.texts() == ["Yes", None, "Yes"]
        failed = next(r for r in job.results if not r.succeeded)
        assert "refused" in failed.error

    def test_meter_accounts_only_successes(self):
        meter = UsageMeter(price_per_1k_tokens=1.0)
        job = BatchJob(_PickyClient(), meter=meter)
        job.submit_many(["good", "bad"])
        job.process()
        assert meter.n_requests == 1
        assert meter.prompt_tokens == 5

    def test_report_format(self):
        job = BatchJob(EchoClient("No"))
        job.submit("hello world")
        job.process()
        report = job.report()
        assert "1/1 ok" in report
        assert "$" in report

    def test_lifecycle_enforced(self):
        job = BatchJob(EchoClient("No"))
        job.submit("x")
        job.process()
        with pytest.raises(LLMError):
            job.process()  # twice
        with pytest.raises(LLMError):
            job.submit("y")  # after processing

    def test_empty_batch_yields_empty_report(self):
        """A request-less job completes with a zeroed, well-formed report."""
        job = BatchJob(EchoClient("No"))
        job.process()
        assert job.results == []
        assert job.texts() == []
        assert job.n_failed == 0
        assert job.meter.n_requests == 0
        assert "0/0 ok" in job.report()
        with pytest.raises(LLMError):
            job.process()  # processed is processed, even when empty

    @pytest.mark.parametrize("workers", [0, -2])
    def test_workers_validated(self, workers):
        job = BatchJob(EchoClient("No"))
        job.submit("x")
        with pytest.raises(LLMError, match="workers must be >= 1"):
            job.process(workers=workers)

    def test_results_before_process_raise(self):
        job = BatchJob(EchoClient("No"))
        job.submit("x")
        with pytest.raises(LLMError):
            _ = job.results


class TestChunkedProcessing:
    def test_chunked_matches_serial(self):
        prompts = [f"prompt {i}" if i % 3 else f"a bad one {i}" for i in range(23)]
        serial = BatchJob(_PickyClient())
        serial.submit_many(prompts)
        serial.process()

        chunked = BatchJob(_PickyClient())
        chunked.submit_many(prompts)
        chunked.process(workers=3, chunk_size=4)
        assert chunked.texts() == serial.texts()
        assert chunked.n_failed == serial.n_failed

    def test_chunked_error_capture_preserves_indices(self):
        job = BatchJob(_PickyClient())
        job.submit_many(["good", "a bad one", "good", "bad again", "good"])
        job.process(workers=2, chunk_size=2)
        failed = [r.index for r in job.results if not r.succeeded]
        assert failed == [1, 3]
        assert all(job.results[i].index == i for i in range(5))

    def test_chunked_metering_matches_serial(self):
        serial_meter = UsageMeter(price_per_1k_tokens=1.0)
        serial = BatchJob(_PickyClient(), meter=serial_meter)
        serial.submit_many(["good", "bad", "good"])
        serial.process()

        chunked_meter = UsageMeter(price_per_1k_tokens=1.0)
        chunked = BatchJob(_PickyClient(), meter=chunked_meter)
        chunked.submit_many(["good", "bad", "good"])
        chunked.process(workers=2, chunk_size=1)
        assert chunked_meter.n_requests == serial_meter.n_requests
        assert chunked_meter.prompt_tokens == serial_meter.prompt_tokens

    def test_explicit_executor_reused_not_closed(self):
        with ThreadStudyExecutor(2) as executor:
            job = BatchJob(EchoClient("No"))
            job.submit_many(["p1", "p2", "p3"])
            job.process(executor=executor)
            assert job.texts() == ["No", "No", "No"]
            # The caller's pool must survive for further use.
            assert executor.map_tasks(len, [[1, 2]]) == [2]

    def test_process_backend_with_picklable_client(self):
        job = BatchJob(EchoClient("No"))
        job.submit_many([f"p{i}" for i in range(6)])
        with ProcessStudyExecutor(2) as executor:
            job.process(executor=executor)
        assert job.texts() == ["No"] * 6

    def test_budget_trips_on_same_request_as_serial(self):
        def run(**process_kwargs):
            meter = UsageMeter(price_per_1k_tokens=1.0, token_budget=14)
            job = BatchJob(EchoClient("No"), meter=meter)
            job.submit_many(["one two", "three four", "five six"])
            job.process(**process_kwargs)
            return job.texts(), [r.error for r in job.results]

        serial_texts, serial_errors = run()
        chunked_texts, chunked_errors = run(workers=2, chunk_size=1)
        assert chunked_texts == serial_texts
        assert chunked_errors == serial_errors

    def test_invalid_executor_rejected(self):
        job = BatchJob(EchoClient("No"))
        job.submit("x")
        with pytest.raises(LLMError):
            job.process(executor=object())


class TestLengthBucketing:
    """``bucket_by_length=True`` regroups work without changing results."""

    def _prompts(self):
        # Deliberately unsorted word counts so bucketing must reorder.
        return [" ".join(["w"] * n) for n in (9, 2, 7, 1, 8, 3, 6, 4, 5)]

    def test_bucketed_matches_serial(self):
        serial = BatchJob(EchoClient("No"))
        serial.submit_many(self._prompts())
        serial.process()

        bucketed = BatchJob(EchoClient("No"))
        bucketed.submit_many(self._prompts())
        bucketed.process(chunk_size=3, bucket_by_length=True)
        assert bucketed.texts() == serial.texts()
        assert [r.index for r in bucketed.results] == [r.index for r in serial.results]

    def test_bucketed_failures_keep_submission_indices(self):
        prompts = ["good " * 5, "a bad one", "good", "longer bad text here"]
        job = BatchJob(_PickyClient())
        job.submit_many(prompts)
        job.process(chunk_size=2, bucket_by_length=True)
        failed = [r.index for r in job.results if not r.succeeded]
        assert failed == [1, 3]

    def test_bucketed_metering_matches_serial(self):
        def run(**process_kwargs):
            meter = UsageMeter(price_per_1k_tokens=1.0)
            job = BatchJob(_PickyClient(), meter=meter)
            job.submit_many(["good " * 4, "bad", "good"])
            job.process(**process_kwargs)
            return meter.n_requests, meter.prompt_tokens

        assert run(chunk_size=1, bucket_by_length=True) == run()

    def test_bucketed_budget_trips_on_same_request_as_serial(self):
        # Metering replays in submission order, so a token budget cuts off
        # at the same request whether or not batches were length-sorted.
        def run(**process_kwargs):
            meter = UsageMeter(price_per_1k_tokens=1.0, token_budget=14)
            job = BatchJob(EchoClient("No"), meter=meter)
            job.submit_many(["one two three four", "five six", "seven"])
            job.process(**process_kwargs)
            return job.texts(), [r.error for r in job.results]

        serial_texts, serial_errors = run()
        bucketed_texts, bucketed_errors = run(chunk_size=1, bucket_by_length=True)
        assert bucketed_texts == serial_texts
        assert bucketed_errors == serial_errors

"""Tests for the batch-API-shaped submission wrapper."""

from __future__ import annotations

import pytest

from repro.errors import LLMError, PromptError
from repro.llm.batching import BatchJob
from repro.llm.client import EchoClient, LLMClient, LLMRequest, LLMResponse, UsageMeter


class _PickyClient(LLMClient):
    """Rejects prompts containing 'bad'."""

    model_name = "picky"

    def complete(self, request: LLMRequest) -> LLMResponse:
        if "bad" in request.prompt:
            raise PromptError("refused")
        return LLMResponse("Yes", self.model_name, 5, 1)


class TestBatchJob:
    def test_submit_process_collect(self):
        job = BatchJob(EchoClient("No"))
        job.submit_many(["p1", "p2", "p3"])
        job.process()
        assert job.texts() == ["No", "No", "No"]
        assert job.n_failed == 0

    def test_per_request_failures_captured(self):
        job = BatchJob(_PickyClient())
        job.submit_many(["good one", "a bad one", "another good"])
        job.process()
        assert job.n_failed == 1
        assert job.texts() == ["Yes", None, "Yes"]
        failed = next(r for r in job.results if not r.succeeded)
        assert "refused" in failed.error

    def test_meter_accounts_only_successes(self):
        meter = UsageMeter(price_per_1k_tokens=1.0)
        job = BatchJob(_PickyClient(), meter=meter)
        job.submit_many(["good", "bad"])
        job.process()
        assert meter.n_requests == 1
        assert meter.prompt_tokens == 5

    def test_report_format(self):
        job = BatchJob(EchoClient("No"))
        job.submit("hello world")
        job.process()
        report = job.report()
        assert "1/1 ok" in report
        assert "$" in report

    def test_lifecycle_enforced(self):
        job = BatchJob(EchoClient("No"))
        with pytest.raises(LLMError):
            job.process()  # empty
        job.submit("x")
        job.process()
        with pytest.raises(LLMError):
            job.process()  # twice
        with pytest.raises(LLMError):
            job.submit("y")  # after processing

    def test_results_before_process_raise(self):
        job = BatchJob(EchoClient("No"))
        job.submit("x")
        with pytest.raises(LLMError):
            _ = job.results

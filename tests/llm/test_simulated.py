"""Tests for the simulated LLM service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset, serialize_record
from repro.errors import LLMError
from repro.eval.metrics import f1_score
from repro.llm import (
    LLMRequest,
    SimulatedLLM,
    build_match_prompt,
    get_profile,
    parse_answer,
)
from repro.study.paper_targets import TABLE3_F1


@pytest.fixture(scope="module")
def abt():
    return build_dataset("ABT", scale=0.15, seed=7)


def _predict_all(client, dataset, seed=None):
    predictions = []
    for pair in dataset.pairs:
        prompt = build_match_prompt(
            serialize_record(pair.left), serialize_record(pair.right)
        )
        predictions.append(parse_answer(client.complete(LLMRequest(prompt)).text))
    return np.array(predictions)


class TestCalibration:
    def test_gpt4_near_paper_envelope(self, abt):
        dataset, world = abt
        client = SimulatedLLM(get_profile("gpt-4"), world, seed=0)
        predictions = _predict_all(client, dataset)
        f1 = f1_score(dataset.labels(), predictions)
        target = TABLE3_F1["MatchGPT[GPT-4]"]["ABT"]
        assert abs(f1 - target) < 8.0

    def test_gpt4_beats_gpt35(self, abt):
        dataset, world = abt
        strong = _predict_all(SimulatedLLM(get_profile("gpt-4"), world, 0), dataset)
        weak = _predict_all(SimulatedLLM(get_profile("gpt-3.5-turbo"), world, 0), dataset)
        labels = dataset.labels()
        assert f1_score(labels, strong) > f1_score(labels, weak)

    def test_errors_concentrate_on_hard_pairs(self, abt):
        """Within each label class, misclassified pairs are harder.

        (The comparison is per class: matches and non-matches have
        different base hardness distributions by construction.)
        """
        dataset, world = abt
        client = SimulatedLLM(get_profile("gpt-3.5-turbo"), world, seed=0)
        predictions = _predict_all(client, dataset)
        labels = dataset.labels()
        hardness = np.array([p.hardness for p in dataset.pairs])
        wrong = predictions != labels
        negatives = labels == 0
        assert wrong[negatives].sum() >= 5, "need errors to compare"
        assert (
            hardness[negatives & wrong].mean() > hardness[negatives & ~wrong].mean()
        )


class TestDeterminism:
    def test_same_seed_same_answers(self, abt):
        dataset, world = abt
        a = _predict_all(SimulatedLLM(get_profile("gpt-4"), world, 3), dataset)
        b = _predict_all(SimulatedLLM(get_profile("gpt-4"), world, 3), dataset)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_answers(self, abt):
        dataset, world = abt
        a = _predict_all(SimulatedLLM(get_profile("gpt-3.5-turbo"), world, 0), dataset)
        b = _predict_all(SimulatedLLM(get_profile("gpt-3.5-turbo"), world, 99), dataset)
        assert (a != b).any()

    def test_prompt_sensitivity(self, abt):
        """Different serialised column orders can flip borderline answers."""
        dataset, world = abt
        client = SimulatedLLM(get_profile("gpt-3.5-turbo"), world, seed=0)
        flips = 0
        from repro.data.serialize import column_order

        for pair in dataset.pairs[:300]:
            answers = set()
            for seed in (0, 1, 2):
                order = column_order(pair.n_attributes, seed)
                prompt = build_match_prompt(
                    serialize_record(pair.left, order), serialize_record(pair.right, order)
                )
                answers.add(client.complete(LLMRequest(prompt)).text)
            flips += len(answers) > 1
        assert flips > 0


class TestFallback:
    def test_out_of_world_uses_similarity(self, abt):
        _dataset, world = abt
        client = SimulatedLLM(get_profile("gpt-4"), world, seed=0)
        prompt = build_match_prompt("val unknown thing alpha", "val unknown thing alpha")
        response = client.complete(LLMRequest(prompt))
        assert response.text == "Yes"
        assert client.n_fallback_decisions == 1

    def test_out_of_world_dissimilar_is_no(self, abt):
        _dataset, world = abt
        client = SimulatedLLM(get_profile("gpt-4"), world, seed=0)
        prompt = build_match_prompt("val aaa bbb", "val zzz qqq ")
        assert client.complete(LLMRequest(prompt)).text == "No"


class TestMetadata:
    def test_bad_strategy_tag_raises(self, abt):
        _dataset, world = abt
        client = SimulatedLLM(get_profile("gpt-4"), world, seed=0)
        prompt = build_match_prompt("val a", "val b")
        with pytest.raises(LLMError):
            client.complete(LLMRequest(prompt, metadata={"demo_strategy": "bogus"}))

    def test_usage_reported(self, abt):
        _dataset, world = abt
        client = SimulatedLLM(get_profile("gpt-4"), world, seed=0)
        prompt = build_match_prompt("val a", "val b")
        response = client.complete(LLMRequest(prompt))
        assert response.prompt_tokens > 10
        assert response.completion_tokens >= 1

"""Tests for the deterministic token counter."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.tokens import count_tokens


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_words_and_punct(self):
        assert count_tokens("Yes.") == 2

    def test_long_words_split(self):
        assert count_tokens("internationalisation") > 1

    def test_monotone_under_concatenation(self):
        a, b = "entity one", "entity two"
        assert count_tokens(a + " " + b) == count_tokens(a) + count_tokens(b)

    @given(st.text(max_size=200))
    @settings(max_examples=50)
    def test_non_negative_and_bounded(self, text):
        n = count_tokens(text)
        assert 0 <= n <= max(1, len(text))

    def test_deterministic(self):
        prompt = "Do the two entities match? Entity 1: 'sony mdr'"
        assert count_tokens(prompt) == count_tokens(prompt)

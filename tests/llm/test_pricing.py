"""Tests for the published price sheets."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.llm.pricing import OPENAI_BATCH_PRICES, TOGETHER_AI_PRICES, api_price_per_1k


class TestPricing:
    def test_paper_quoted_openai_prices(self):
        assert OPENAI_BATCH_PRICES["gpt-4"].dollars_per_1k_input_tokens == 0.015
        assert OPENAI_BATCH_PRICES["gpt-3.5-turbo"].dollars_per_1k_input_tokens == 0.00075
        assert OPENAI_BATCH_PRICES["gpt-4o-mini"].dollars_per_1k_input_tokens == 0.000075

    def test_together_prices_for_open_models(self):
        assert TOGETHER_AI_PRICES["solar"].dollars_per_1k_input_tokens == 0.0009
        assert TOGETHER_AI_PRICES["beluga2"].dollars_per_1k_input_tokens == 0.0009

    def test_lookup_order(self):
        assert api_price_per_1k("gpt-4").provider == "OpenAI Batch API"
        assert api_price_per_1k("solar").provider == "Hosting on Together.ai"

    def test_unknown_model_raises(self):
        with pytest.raises(CostModelError):
            api_price_per_1k("unknown-model")

    def test_gpt4_is_200x_gpt4o_mini(self):
        ratio = (
            OPENAI_BATCH_PRICES["gpt-4"].dollars_per_1k_input_tokens
            / OPENAI_BATCH_PRICES["gpt-4o-mini"].dollars_per_1k_input_tokens
        )
        assert ratio == pytest.approx(200.0)

"""Tests for the online serving subsystem."""

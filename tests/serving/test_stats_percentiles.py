"""ServingStats latency-summary edge cases and obs-histogram agreement.

The percentile path has three classic off-by-one traps — a single
sample, nearest-rank selection near the tail, and degenerate all-equal
windows — plus two aggregation contracts: the all-time count survives
window eviction, and absorbing stats into metrics registries then
merging conserves the measurement count the summaries reported.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.serving.service import ServingStats


def _series(snapshot: dict, name: str) -> float:
    [entry] = [e for e in snapshot["counters"] if e["name"] == name]
    return entry["value"]


def test_single_sample_window_collapses_every_percentile_to_it():
    stats = ServingStats()
    stats.record_latency(0.042)
    summary = stats.latency_summary()
    assert summary["count"] == 1
    assert (
        summary["mean_ms"] == summary["p50_ms"] == summary["p95_ms"]
        == summary["p99_ms"] == summary["max_ms"] == 42.0
    )


def test_nearest_rank_percentiles_over_twenty_samples():
    stats = ServingStats()
    for ms in range(1, 21):  # 1..20 ms, recorded out of order
        stats.record_latency(((ms * 7) % 20 + 1) / 1000.0)
    summary = stats.latency_summary()
    assert summary["count"] == 20
    # Nearest rank over indices 0..19: p50 -> index 10, p95 -> 18, p99 -> 19.
    assert summary["p50_ms"] == 11.0
    assert summary["p95_ms"] == 19.0
    assert summary["p99_ms"] == 20.0 == summary["max_ms"]
    assert summary["mean_ms"] == 10.5


def test_all_equal_latencies_yield_flat_percentiles():
    stats = ServingStats()
    for _ in range(7):
        stats.record_latency(0.005)
    summary = stats.latency_summary()
    assert (
        summary["mean_ms"] == summary["p50_ms"] == summary["p95_ms"]
        == summary["p99_ms"] == summary["max_ms"] == 5.0
    )


def test_empty_summary_is_explicit_zeros_with_full_schema():
    summary = ServingStats().latency_summary()
    assert summary == {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                       "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}


def test_count_is_all_time_while_percentiles_track_the_window():
    stats = ServingStats()
    stats.record_latency(0.5)  # will be evicted from the window
    for _ in range(ServingStats.WINDOW):
        stats.record_latency(0.001)
    summary = stats.latency_summary()
    assert summary["count"] == ServingStats.WINDOW + 1
    assert summary["max_ms"] == 1.0  # the 500 ms outlier left the window


def test_absorbed_summaries_agree_with_the_merged_registry():
    # Two workers' serving stats, absorbed into separate registries and
    # merged: the merged measurement counter must equal the sum of what
    # each worker's latency summary reported — summary and histogram
    # views of the same traffic may never drift apart.
    workers = []
    for latencies in ([0.010, 0.020, 0.030], [0.040, 0.050]):
        stats = ServingStats()
        stats.bump("requests", len(latencies))
        for value in latencies:
            stats.record_latency(value)
        workers.append(stats)

    merged = MetricsRegistry()
    for stats in workers:
        merged.merge(MetricsRegistry().absorb_serving_stats(stats).snapshot())

    snapshot = merged.snapshot()
    expected = sum(s.latency_summary()["count"] for s in workers)
    assert _series(snapshot, "serving_latency_measurements_total") == expected == 5
    assert _series(snapshot, "serving_requests_total") == sum(
        s.counters["requests"] for s in workers
    )

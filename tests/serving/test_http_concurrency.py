"""Concurrent HTTP error mapping: exact status partitioning under stress.

Drives parallel POSTs into a deliberately tiny service (one in-flight
batch, a two-slot queue) during injected overload and with an open
circuit breaker, and asserts the *exact* partition of status codes —
not just "some failed" — plus that every error body names its error
type.  This pins the property the resilience control plane exists for:
clients always get a structured answer, never a hang or a bare 500.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.matchers.base import Matcher
from repro.reliability.breaker import CircuitBreaker, STATE_OPEN
from repro.routing import MatchRouter, RoutedBackend
from repro.serving.http import MatchHTTPServer
from repro.serving.service import MatchService


def _post(url: str, payload: dict) -> tuple[int, dict]:
    data = json.dumps(payload).encode()
    request = urllib.request.Request(url + "/match", data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class _GatedMatcher(Matcher):
    """Blocks inside predict until released."""

    name = "gated"
    display_name = "Gated"

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def _predict(self, pairs, serialization_seed):
        self.entered.set()
        self.release.wait(10.0)
        return np.zeros(len(pairs), dtype=np.int64)


class _MidScorer(Matcher):
    """Scores every pair mid-band, forcing an escalation request."""

    name = "mid"
    display_name = "Mid"

    def _predict(self, pairs, serialization_seed):
        return np.zeros(len(pairs), dtype=np.int64)

    def match_scores(self, pairs, serialization_seed=None):
        return np.full(len(pairs), 0.5)


class _ConstantMatcher(Matcher):
    """Always answers 1; counts calls."""

    name = "constant"
    display_name = "Constant"

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def _predict(self, pairs, serialization_seed):
        self.calls += 1
        return np.ones(len(pairs), dtype=np.int64)


class TestOverloadPartitioning:
    def test_exact_status_partition_under_concurrent_overload(self):
        matcher = _GatedMatcher()
        service = MatchService(
            matcher,
            max_batch_size=1,
            max_queue=2,
            max_wait_ms=0.0,
            default_timeout_s=0.3,
        )
        with MatchHTTPServer(service) as running:
            with ThreadPoolExecutor(max_workers=6) as pool:
                payload = {"left": ["a"], "right": ["a"]}
                # Phase 1: one request enters the (gated) batch.
                first = pool.submit(_post, running.url, payload)
                assert matcher.entered.wait(5.0)
                # Phase 2: two more fill the admission queue exactly.
                queued = [pool.submit(_post, running.url, payload) for _ in range(2)]
                deadline = threading.Event()
                for _ in range(200):
                    if service._batcher.queue_depth >= 2:
                        break
                    deadline.wait(0.01)
                assert service._batcher.queue_depth == 2
                # Phase 3: saturated — healthz fails, new posts shed.
                status, body = _get(running.url, "/healthz")
                assert status == 503
                assert "saturated" in body["degraded"]["causes"]
                shed = [pool.submit(_post, running.url, payload) for _ in range(3)]
                outcomes = [f.result() for f in [first, *queued, *shed]]
            statuses = sorted(code for code, _body in outcomes)
            # Exact partition: 3 deadline expiries + 3 sheds, nothing else.
            assert statuses == [429, 429, 429, 504, 504, 504]
            for code, body in outcomes:
                assert body["error"] in ("OverloadedError", "DeadlineExceededError")
                if code == 429:
                    assert body["error"] == "OverloadedError"
                if code == 504:
                    assert body["error"] == "DeadlineExceededError"
            matcher.release.set()
            # Recovery: the queue drains and the service serves again.
            for _ in range(200):
                if service._batcher.queue_depth == 0:
                    break
                threading.Event().wait(0.01)
            status, _body = _get(running.url, "/healthz")
            assert status == 200

    def test_open_breaker_serves_degraded_200s_not_errors(self):
        authority = _ConstantMatcher()
        breaker = CircuitBreaker(
            name="expensive",
            min_requests=1,
            failure_threshold=1.0,
            open_duration_s=600.0,
            count=False,
        )
        breaker.record_failure(1)
        assert breaker.state == STATE_OPEN
        router = MatchRouter(
            backends=[
                RoutedBackend(
                    name="cheap", matcher=_MidScorer(), low=0.3, high=0.7
                ),
                RoutedBackend(
                    name="expensive", matcher=authority, breaker=breaker
                ),
            ],
        )
        service = MatchService(_MidScorer(), router=router, max_wait_ms=0.5)
        with MatchHTTPServer(service) as running:
            payload = {"left": ["a"], "right": ["a"]}
            with ThreadPoolExecutor(max_workers=4) as pool:
                outcomes = [
                    f.result()
                    for f in [pool.submit(_post, running.url, payload) for _ in range(8)]
                ]
            # Every request got a degraded answer, not an error.
            assert [code for code, _ in outcomes] == [200] * 8
            for _code, body in outcomes:
                assert body["breaker_open"] is True
                assert body["backend"] == "cheap"
            assert authority.calls == 0
            # The open breaker degrades health but not availability.
            status, body = _get(running.url, "/healthz")
            assert status == 503
            assert body["status"] == "degraded"
            assert "breaker_open:expensive" in body["degraded"]["causes"]

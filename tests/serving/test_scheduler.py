"""Tests for the micro-batching scheduler."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
)
from repro.reliability.clock import FakeClock
from repro.serving.scheduler import MicroBatcher, PendingResult


def _doubler(items):
    return [item * 2 for item in items]


class TestInlineMode:
    def test_drain_processes_fifo_batches(self):
        seen_batches = []

        def record(items):
            seen_batches.append(list(items))
            return items

        batcher = MicroBatcher(record, max_batch_size=3)
        pending = [batcher.submit(i) for i in range(7)]
        assert batcher.queue_depth == 7
        assert batcher.drain() == 3
        assert seen_batches == [[0, 1, 2], [3, 4, 5], [6]]
        assert [p.result(0) for p in pending] == list(range(7))

    def test_drain_on_empty_queue_is_a_noop(self):
        batcher = MicroBatcher(_doubler)
        assert batcher.drain() == 0

    def test_counters_track_batches_and_occupancy(self):
        batcher = MicroBatcher(_doubler, max_batch_size=4)
        for i in range(6):
            batcher.submit(i)
        batcher.drain()
        counters = batcher.counters()
        assert counters["submitted"] == 6
        assert counters["batches"] == 2
        assert counters["processed"] == 6
        assert counters["occupancy_sum"] == 6  # 4 + 2

    def test_latency_measured_on_injected_clock(self):
        clock = FakeClock()
        batcher = MicroBatcher(_doubler, clock=clock)
        pending = batcher.submit(1)
        clock.advance(0.25)
        batcher.drain()
        assert pending.latency_s == pytest.approx(0.25)


class TestAdmissionControl:
    def test_overload_sheds_with_structured_error(self):
        batcher = MicroBatcher(_doubler, max_queue=2)
        batcher.submit(1)
        batcher.submit(2)
        assert batcher.saturated
        with pytest.raises(OverloadedError):
            batcher.submit(3)
        assert batcher.counters()["shed"] == 1
        # Shedding rejected the caller without growing the queue.
        assert batcher.queue_depth == 2

    def test_drain_clears_saturation(self):
        batcher = MicroBatcher(_doubler, max_queue=1)
        batcher.submit(1)
        assert batcher.saturated
        batcher.drain()
        assert not batcher.saturated
        batcher.submit(2)  # admitted again

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(_doubler, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(_doubler, max_wait_ms=-1.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(_doubler, max_queue=0)


class TestFailureDelivery:
    def test_batch_error_delivered_to_every_request(self):
        def boom(items):
            raise ValueError("model fell over")

        batcher = MicroBatcher(boom, max_batch_size=2)
        pending = [batcher.submit(i) for i in range(2)]
        batcher.drain()
        for p in pending:
            assert p.done
            with pytest.raises(ValueError, match="fell over"):
                p.result(0)
        assert batcher.counters()["batch_errors"] == 1

    def test_result_count_mismatch_is_a_serving_error(self):
        batcher = MicroBatcher(lambda items: [1])
        pending = [batcher.submit(i) for i in range(3)]
        batcher.drain()
        with pytest.raises(ServingError, match="returned 1 results"):
            pending[0].result(0)

    def test_result_timeout_raises_deadline(self):
        pending = PendingResult(submitted_at=0.0)
        with pytest.raises(DeadlineExceededError):
            pending.result(timeout_s=0.01)


class TestThreadedMode:
    def test_concurrent_submits_coalesce(self):
        release = threading.Event()

        def gated(items):
            release.wait(5.0)
            return [item * 2 for item in items]

        with MicroBatcher(gated, max_batch_size=8, max_wait_ms=50.0) as batcher:
            pending = [batcher.submit(i) for i in range(8)]
            release.set()
            assert [p.result(5.0) for p in pending] == [i * 2 for i in range(8)]
        counters = batcher.counters()
        # A full batch forms as soon as 8 requests are queued; the
        # dispatcher may have grabbed a head-of-queue partial first, but
        # every request is processed in at most a handful of batches.
        assert counters["processed"] == 8
        assert 1 <= counters["batches"] <= 8

    def test_max_wait_flushes_partial_batch(self):
        with MicroBatcher(_doubler, max_batch_size=64, max_wait_ms=5.0) as batcher:
            pending = batcher.submit(21)
            assert pending.result(5.0) == 42

    def test_double_start_rejected(self):
        batcher = MicroBatcher(_doubler).start()
        try:
            with pytest.raises(ServingError):
                batcher.start()
        finally:
            batcher.stop()

    def test_stop_drains_leftovers(self):
        batcher = MicroBatcher(_doubler)
        pending = batcher.submit(5)  # never started: queued only
        batcher.stop()
        assert pending.result(0) == 10


class TestLengthBucketedMode:
    """``length_key`` forms similar-length batches without starving anyone."""

    def test_batches_group_similar_lengths(self):
        seen_batches = []

        def record(items):
            seen_batches.append(list(items))
            return [item * 2 for item in items]

        batcher = MicroBatcher(record, max_batch_size=3, length_key=lambda x: x)
        pending = [batcher.submit(n) for n in (9, 1, 8, 2, 7, 3)]
        assert batcher.drain() == 2
        # The window holding the oldest request (9) goes first; the rest
        # batch together in length order.
        assert seen_batches == [[7, 8, 9], [1, 2, 3]]
        # Every submitter still receives its own request's result.
        assert [p.result(0) for p in pending] == [18, 2, 16, 4, 14, 6]

    def test_oldest_request_never_starves(self):
        seen_batches = []

        def record(items):
            seen_batches.append(list(items))
            return items

        batcher = MicroBatcher(record, max_batch_size=2, length_key=lambda x: x)
        batcher.submit(100)  # a long outlier, admitted first
        for short in (1, 2, 3):
            batcher.submit(short)
        batcher.drain()
        # A pure shortest-first policy would keep deferring 100; the
        # window is anchored so the oldest request rides the first batch.
        assert 100 in seen_batches[0]

    def test_admission_control_unaffected(self):
        batcher = MicroBatcher(_doubler, max_queue=2, length_key=lambda x: x)
        batcher.submit(1)
        batcher.submit(2)
        with pytest.raises(OverloadedError):
            batcher.submit(3)

    def test_without_length_key_order_is_fifo(self):
        seen_batches = []

        def record(items):
            seen_batches.append(list(items))
            return items

        batcher = MicroBatcher(record, max_batch_size=3)
        for n in (9, 1, 8, 2, 7, 3):
            batcher.submit(n)
        batcher.drain()
        assert seen_batches == [[9, 1, 8], [2, 7, 3]]

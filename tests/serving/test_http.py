"""Tests for the stdlib HTTP front-end: endpoints and error mapping."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.matchers.base import Matcher
from repro.matchers.string_sim import StringSimMatcher
from repro.serving.http import MatchHTTPServer
from repro.serving.index import CandidateIndex
from repro.serving.service import MatchService


def _post(url: str, payload: dict | bytes) -> tuple[int, dict]:
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(url + "/match", data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class _GatedMatcher(Matcher):
    """Blocks inside predict until released (for saturation tests)."""

    name = "gated"
    display_name = "Gated"

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def _predict(self, pairs, serialization_seed):
        self.entered.set()
        self.release.wait(10.0)
        return np.zeros(len(pairs), dtype=np.int64)


@pytest.fixture()
def server():
    service = MatchService(StringSimMatcher(), max_wait_ms=1.0)
    with MatchHTTPServer(service) as running:
        yield running


class TestEndpoints:
    def test_match_pair(self, server):
        status, body = _post(
            server.url, {"left": ["sony mdr", "audio"], "right": ["sony mdr", "audio"]}
        )
        assert status == 200
        assert body["matched"] is True
        assert body["label"] == 1
        assert body["latency_ms"] >= 0

    def test_metrics_reflect_traffic(self, server):
        _post(server.url, {"left": ["a"], "right": ["a"]})
        status, body = _get(server.url, "/metrics")
        assert status == 200
        assert body["counters"]["requests"] >= 1
        assert "scheduler" in body

    def test_healthz_ok(self, server):
        status, body = _get(server.url, "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_lookup_endpoint(self):
        index = CandidateIndex(min_shared=1)
        from repro.data.record import Record

        index.add_records(
            [Record(f"r{i}", (f"sony mdr model{i}",), f"e{i}") for i in range(3)]
        )
        service = MatchService(StringSimMatcher(), index=index, max_wait_ms=1.0)
        with MatchHTTPServer(service) as running:
            status, body = _post(
                running.url, {"record": ["sony mdr model1"], "top_k": 2}
            )
        assert status == 200
        assert {m["record_id"] for m in body["matches"]} <= {"r0", "r1", "r2"}


class TestErrorMapping:
    def test_bad_json_is_400(self, server):
        status, body = _post(server.url, b"{nope")
        assert status == 400
        assert body["error"] == "ServingError"

    def test_missing_fields_is_400(self, server):
        status, body = _post(server.url, {"wrong": "shape"})
        assert status == 400
        assert "left" in body["detail"]

    def test_lookup_without_index_is_400(self, server):
        status, body = _post(server.url, {"record": ["a"]})
        assert status == 400
        assert body["error"] == "ServingError"

    def test_unknown_path_is_404(self, server):
        assert _get(server.url, "/nope")[0] == 404
        request = urllib.request.Request(
            server.url + "/other", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404


class TestSaturation:
    def test_healthz_degrades_and_match_sheds_when_saturated(self):
        matcher = _GatedMatcher()
        service = MatchService(matcher, max_batch_size=1, max_queue=1, max_wait_ms=0.0)
        with MatchHTTPServer(service) as running:
            blocked = threading.Thread(
                target=_post, args=(running.url, {"left": ["a"], "right": ["a"]}),
                daemon=True,
            )
            blocked.start()
            assert matcher.entered.wait(5.0)
            # Fill the admission queue behind the in-flight batch.
            service._batcher.submit(service.make_pair(["b"], ["b"]))

            status, body = _get(running.url, "/healthz")
            assert status == 503
            assert body["status"] == "degraded"

            status, body = _post(running.url, {"left": ["c"], "right": ["c"]})
            assert status == 429
            assert body["error"] == "OverloadedError"

            matcher.release.set()
            blocked.join(timeout=5.0)
            status, body = _get(running.url, "/healthz")
            assert status == 200


def _headers_of(url: str, path: str = "", data: bytes | None = None) -> tuple[int, dict]:
    """Status and response headers, for error responses too."""
    request = urllib.request.Request(
        url + path, data=data, method="POST" if data is not None else "GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers)


class TestResilienceMapping:
    def test_oversized_body_is_413(self, server):
        from repro.serving.http import MAX_BODY_BYTES

        blob = (
            b'{"left": ["' + b"x" * MAX_BODY_BYTES + b'"], "right": ["x"]}'
        )
        status, body = _post(server.url, blob)
        assert status == 413
        assert body["error"] == "PayloadTooLargeError"

    def test_shed_load_carries_retry_after(self):
        matcher = _GatedMatcher()
        service = MatchService(
            matcher, max_batch_size=1, max_queue=1, max_wait_ms=0.0
        )
        with MatchHTTPServer(service) as running:
            blocked = threading.Thread(
                target=_post,
                args=(running.url, {"left": ["a"], "right": ["a"]}),
                daemon=True,
            )
            blocked.start()
            assert matcher.entered.wait(5.0)
            service._batcher.submit(service.make_pair(["b"], ["b"]))

            payload = json.dumps({"left": ["c"], "right": ["c"]}).encode()
            status, headers = _headers_of(running.url, "/match", data=payload)
            assert status == 429
            assert headers.get("Retry-After") == "1"

            status, headers = _headers_of(running.url, "/healthz")
            assert status == 503
            assert headers.get("Retry-After") == "1"

            matcher.release.set()
            blocked.join(timeout=5.0)

    def test_healthz_degraded_block_lists_causes(self):
        matcher = _GatedMatcher()
        service = MatchService(
            matcher, max_batch_size=1, max_queue=1, max_wait_ms=0.0
        )
        with MatchHTTPServer(service) as running:
            status, body = _get(running.url, "/healthz")
            assert status == 200
            assert body["degraded"]["causes"] == []

            blocked = threading.Thread(
                target=_post,
                args=(running.url, {"left": ["a"], "right": ["a"]}),
                daemon=True,
            )
            blocked.start()
            assert matcher.entered.wait(5.0)
            service._batcher.submit(service.make_pair(["b"], ["b"]))

            status, body = _get(running.url, "/healthz")
            assert status == 503
            assert "saturated" in body["degraded"]["causes"]
            matcher.release.set()
            blocked.join(timeout=5.0)

"""Tests for the MatchService façade: determinism, retries, shedding."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    TransientLLMError,
)
from repro.llm.client import EchoClient
from repro.matchers.base import Matcher
from repro.matchers.matchgpt import MatchGPTMatcher
from repro.matchers.string_sim import StringSimMatcher
from repro.reliability.clock import FakeClock
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.policy import RetryPolicy
from repro.reliability.retry import RetryingClient
from repro.serving.index import CandidateIndex
from repro.serving.service import MatchService

TRACE = [
    (["sony mdr headphones", "audio"], ["sony mdr headphones", "audio"]),
    (["sony mdr headphones", "audio"], ["nikon lens kit", "optics"]),
    (["ipa beer 6.5 abv", "hoppy"], ["ipa beer 6.5 abv", "hoppy"]),
    (["canon eos camera", "photo"], ["canon eos r5", "photo"]),
] * 3


def _run_trace(service: MatchService) -> tuple[list[int], dict]:
    labels = [service.match_pair(left, right).label for left, right in TRACE]
    return labels, service.metrics()


class _FlakyMatcher(Matcher):
    """Fails the first ``n_failures`` predict calls with a transient error."""

    name = "flaky"
    display_name = "Flaky"

    def __init__(self, n_failures: int) -> None:
        super().__init__()
        self.remaining = n_failures
        self.calls = 0

    def _predict(self, pairs, serialization_seed):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientLLMError("injected")
        return np.zeros(len(pairs), dtype=np.int64)


class _GatedMatcher(Matcher):
    """Blocks inside predict until released (for deadline/saturation tests)."""

    name = "gated"
    display_name = "Gated"

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def _predict(self, pairs, serialization_seed):
        self.entered.set()
        self.release.wait(10.0)
        return np.zeros(len(pairs), dtype=np.int64)


class TestDeterministicReplay:
    def test_same_trace_same_responses_and_stats(self):
        runs = []
        for _ in range(2):
            service = MatchService(
                StringSimMatcher(), max_batch_size=4, clock=FakeClock()
            )
            runs.append(_run_trace(service))
        (labels_a, metrics_a), (labels_b, metrics_b) = runs
        assert labels_a == labels_b
        assert metrics_a == metrics_b
        assert metrics_a["counters"]["requests"] == len(TRACE)

    def test_deterministic_under_fault_injection(self):
        """A fault-injected matcher replays a trace to identical stats."""
        plan = FaultPlan(transient_rate=0.3, rate_limit_rate=0.1, seed=5)
        runs = []
        for _ in range(2):
            clock = FakeClock()
            client = RetryingClient(
                FaultInjector(EchoClient("Yes"), plan, clock=clock, count=False),
                RetryPolicy(max_attempts=4),
                clock=clock,
                count=False,
            )
            matcher = MatchGPTMatcher(client)
            matcher.fit([], None, seed=0)
            service = MatchService(matcher, max_batch_size=4, clock=clock)
            runs.append(_run_trace(service))
        (labels_a, metrics_a), (labels_b, metrics_b) = runs
        assert labels_a == labels_b
        assert metrics_a == metrics_b
        assert all(label == 1 for label in labels_a)  # echo says Yes

    def test_inline_batches_coalesce_fifo(self):
        service = MatchService(StringSimMatcher(), max_batch_size=3)
        pairs = [service.make_pair(left, right) for left, right in TRACE[:7]]
        responses = service.match_pairs(pairs)
        assert len(responses) == 7
        scheduler = service.metrics()["scheduler"]
        assert scheduler["batches"] == 3  # 3 + 3 + 1
        assert scheduler["occupancy_sum"] == 7


class TestRetries:
    def test_retry_policy_recovers_transient_batch_failure(self):
        clock = FakeClock()
        matcher = _FlakyMatcher(n_failures=2)
        service = MatchService(
            matcher,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.1),
            clock=clock,
        )
        response = service.match_pair(["a b"], ["a b"])
        assert response.label == 0
        assert matcher.calls == 3
        assert service.metrics()["counters"]["batch_retries"] == 2
        assert len(clock.sleeps) == 2  # backoff ran on the injected clock

    def test_exhausted_retries_surface_the_error(self):
        service = MatchService(
            _FlakyMatcher(n_failures=10),
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            clock=FakeClock(),
        )
        with pytest.raises(TransientLLMError):
            service.match_pair(["a"], ["a"])
        assert service.metrics()["counters"]["errors"] == 1

    def test_no_policy_means_first_failure_is_final(self):
        matcher = _FlakyMatcher(n_failures=1)
        service = MatchService(matcher)
        with pytest.raises(TransientLLMError):
            service.match_pair(["a"], ["a"])
        assert matcher.calls == 1


class TestAdmissionAndDeadlines:
    def test_shed_load_is_structured_and_counted(self):
        service = MatchService(StringSimMatcher(), max_queue=2)
        pairs = [service.make_pair(left, right) for left, right in TRACE[:3]]
        with pytest.raises(OverloadedError):
            service.match_pairs(pairs)
        assert service.metrics()["counters"]["shed"] == 1

    def test_deadline_bounds_the_callers_wait(self):
        matcher = _GatedMatcher()
        with MatchService(matcher, max_wait_ms=0.0) as service:
            with pytest.raises(DeadlineExceededError):
                service.match_pair(["a"], ["a"], timeout_s=0.05)
            # Deadline expiries are their own counter, not generic errors.
            assert service.metrics()["counters"]["timeouts"] == 1
            assert service.metrics()["counters"]["errors"] == 0
            matcher.release.set()

    def test_healthz_reports_saturation(self):
        matcher = _GatedMatcher()
        with MatchService(matcher, max_batch_size=1, max_queue=1) as service:
            assert service.healthz()["status"] == "ok"
            # First request occupies the matcher; the next fills the queue.
            threading.Thread(
                target=service.match_pair, args=(["a"], ["a"]), daemon=True
            ).start()
            assert matcher.entered.wait(5.0)
            service._batcher.submit(service.make_pair(["b"], ["b"]))
            health = service.healthz()
            assert health["status"] == "degraded"
            assert health["saturated"] is True
            matcher.release.set()


class TestRequestValidation:
    def test_schema_mismatch_rejected(self):
        service = MatchService(StringSimMatcher())
        with pytest.raises(ServingError, match="schema mismatch"):
            service.make_pair(["a", "b"], ["a"])

    def test_empty_record_rejected(self):
        service = MatchService(StringSimMatcher())
        with pytest.raises(ServingError, match="at least one value"):
            service.make_pair([], ["a"])

    def test_lookup_without_index_rejected(self):
        service = MatchService(StringSimMatcher())
        with pytest.raises(ServingError, match="CandidateIndex"):
            service.lookup(["a"])


class TestLookup:
    def test_lookup_blocks_then_matches(self, abt_dataset):
        corpus = [p.right for p in abt_dataset.pairs]
        index = CandidateIndex(min_shared=2)
        index.add_records(corpus)
        service = MatchService(StringSimMatcher(), index=index, max_batch_size=8)
        probe = abt_dataset.pairs[0].left
        matches = service.lookup(probe, top_k=5)
        match_ids = {m.record.record_id for m in matches}
        candidate_ids = {
            c.record.record_id for c in index.query(probe, top_k=5)
        }
        assert match_ids <= candidate_ids
        assert service.metrics()["counters"]["lookups"] == 1


class TestLengthBucketedServing:
    def test_bucketed_responses_match_fifo_responses(self):
        """Per-pair labels are identical with and without length bucketing."""
        fifo = MatchService(StringSimMatcher(), max_batch_size=4,
                            bucket_by_length=False)
        bucketed = MatchService(StringSimMatcher(), max_batch_size=4,
                                bucket_by_length=True)
        fifo_labels = [r.label for r in fifo.match_pairs(
            [fifo.make_pair(left, right) for left, right in TRACE])]
        bucketed_labels = [r.label for r in bucketed.match_pairs(
            [bucketed.make_pair(left, right) for left, right in TRACE])]
        assert bucketed_labels == fifo_labels

    def test_pair_token_length_counts_both_records(self):
        from repro.serving.service import pair_token_length

        service = MatchService(StringSimMatcher())
        pair = service.make_pair(["sony mdr headphones", "audio"],
                                 ["nikon lens kit", "optics"])
        assert pair_token_length(pair) == (3 + 1) + (3 + 1)


class TestLatencySummary:
    def test_empty_window_returns_explicit_zero_schema(self):
        from repro.serving.service import ServingStats

        summary = ServingStats().latency_summary()
        assert summary == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
        }

    def test_count_and_percentile_ordering(self):
        from repro.serving.service import ServingStats

        stats = ServingStats()
        for ms in range(1, 101):
            stats.record_latency(ms / 1000.0)
        summary = stats.latency_summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert summary["p99_ms"] <= summary["max_ms"] == 100.0
        # p99 sits strictly above p95 on a 100-point spread.
        assert summary["p99_ms"] > summary["p95_ms"]

    def test_count_outlives_the_percentile_window(self):
        from repro.serving.service import ServingStats

        stats = ServingStats()
        for _ in range(ServingStats.WINDOW + 10):
            stats.record_latency(0.001)
        assert stats.latency_summary()["count"] == ServingStats.WINDOW + 10

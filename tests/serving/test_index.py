"""Tests for the incremental candidate index, including offline parity."""

from __future__ import annotations

import pytest

from repro.data import build_dataset
from repro.data.blocking import TokenBlocker
from repro.data.record import Record
from repro.errors import DatasetError
from repro.serving.index import CandidateIndex


def _records(texts: list[str], prefix: str) -> list[Record]:
    return [Record(f"{prefix}{i}", (t,), f"e-{prefix}{i}") for i, t in enumerate(texts)]


class TestCandidateIndex:
    def test_query_ranks_by_overlap_then_insertion(self):
        # max_df=1.0 keeps every token so the ranking itself is under test.
        index = CandidateIndex(min_shared=1, max_df=1.0)
        index.add_records(
            _records(["alpha beta gamma", "alpha beta", "alpha delta", "zz yy"], "r")
        )
        probe = Record("p", ("alpha beta gamma",), "e-p")
        got = index.query(probe, top_k=None)
        assert [c.record.record_id for c in got] == ["r0", "r1", "r2"]
        assert [c.shared_tokens for c in got] == [3, 2, 1]

    def test_top_k_truncates(self):
        index = CandidateIndex(min_shared=1, max_df=1.0)
        index.add_records(_records([f"alpha token{i}" for i in range(9)], "r"))
        probe = Record("p", ("alpha",), "e-p")
        assert len(index.query(probe, top_k=3)) == 3

    def test_incremental_add_extends_results(self):
        index = CandidateIndex(min_shared=1)
        index.add_records(_records(["alpha one"], "a"))
        probe = Record("p", ("alpha two",), "e-p")
        before = index.query(probe, top_k=None)
        assert [c.record.record_id for c in before] == ["a0"]
        index.add_records(_records(["alpha two"], "b"))
        after = index.query(probe, top_k=None)
        assert [c.record.record_id for c in after] == ["b0", "a0"]
        assert len(index) == 2

    def test_validation(self):
        with pytest.raises(DatasetError):
            CandidateIndex(min_shared=0)
        with pytest.raises(DatasetError):
            CandidateIndex(max_df=1.5)
        index = CandidateIndex()
        with pytest.raises(DatasetError):
            index.query(Record("p", ("a",), "e"))  # empty index
        index.add_records(_records(["a b"], "r"))
        with pytest.raises(DatasetError):
            index.query(Record("p", ("a",), "e"), top_k=0)


class TestOfflineParity:
    def test_matches_token_blocker_on_seeded_benchmark(self):
        """Querying each left record reproduces TokenBlocker.block exactly."""
        dataset, _world = build_dataset("DBAC", scale=0.05, seed=7)
        left = [p.left for p in dataset.pairs]
        right = [p.right for p in dataset.pairs]
        offline = TokenBlocker(min_shared=2).block(left, right)
        expected = {(a.record_id, b.record_id) for a, b in offline.candidates}

        index = CandidateIndex(min_shared=2)
        index.add_records(right)
        online = {
            (probe.record_id, c.record.record_id)
            for probe in left
            for c in index.query(probe, top_k=None)
        }
        assert online == expected
        assert expected  # the benchmark actually produced candidates

"""Tests for the matcher artifact store (export -> reload -> identical)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ArtifactError, CorruptStateError
from repro.matchers.anymatch import AnyMatchMatcher
from repro.matchers.string_sim import StringSimMatcher
from repro.runtime.persist import verify_digest
from repro.serving.artifacts import (
    ARTIFACT_FORMAT,
    MANIFEST_NAME,
    WEIGHTS_NAME,
    load_artifact,
    save_artifact,
)


class TestAnyMatchRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reloaded_predictions_are_byte_identical(
        self, tmp_path, tiny_config, small_datasets, seed
    ):
        transfer = list(small_datasets.values())
        matcher = AnyMatchMatcher("gpt2").fit(transfer, tiny_config, seed=seed)
        pairs = transfer[0].pairs[:40]

        directory = save_artifact(matcher, tmp_path / f"art{seed}", profile="test")
        reloaded = load_artifact(directory)

        for serialization_seed in (None, 3):
            original_scores = matcher.match_scores(pairs, serialization_seed)
            reloaded_scores = reloaded.match_scores(pairs, serialization_seed)
            assert original_scores.tobytes() == reloaded_scores.tobytes()
            assert np.array_equal(
                matcher.predict(pairs, serialization_seed),
                reloaded.predict(pairs, serialization_seed),
            )

    def test_manifest_carries_roster_metadata(
        self, tmp_path, tiny_config, small_datasets
    ):
        transfer = list(small_datasets.values())
        matcher = AnyMatchMatcher("gpt2").fit(transfer, tiny_config, seed=0)
        directory = save_artifact(matcher, tmp_path / "art", profile="smoke")
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == ARTIFACT_FORMAT
        assert manifest["kind"] == "anymatch"
        assert manifest["profile"] == "smoke"
        assert manifest["roster"]["name"] == "anymatch-gpt2"
        assert manifest["roster"]["requires_fit"] is True
        assert (directory / WEIGHTS_NAME).exists()


class TestExportDeployable:
    def test_smoke_profile_exports_loadable_artifact(self, tmp_path):
        from repro.config import get_profile
        from repro.serving.artifacts import export_deployable

        directory = export_deployable(get_profile("smoke"), tmp_path / "deploy")
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["profile"] == "smoke"
        reloaded = load_artifact(directory)
        assert reloaded.display_name == "AnyMatch[GPT-2]"


class TestStringSimRoundTrip:
    def test_threshold_round_trips(self, tmp_path):
        directory = save_artifact(StringSimMatcher(threshold=0.41), tmp_path / "s")
        reloaded = load_artifact(directory)
        assert isinstance(reloaded, StringSimMatcher)
        assert reloaded.threshold == pytest.approx(0.41)


class TestArtifactErrors:
    def test_unfitted_matcher_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="fitted before export"):
            save_artifact(AnyMatchMatcher("gpt2"), tmp_path / "x")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError, match=MANIFEST_NAME):
            load_artifact(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(ArtifactError, match="corrupt"):
            load_artifact(tmp_path)

    def test_unknown_format_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ArtifactError, match="unsupported"):
            load_artifact(tmp_path)

    def test_unknown_kind(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format_version": ARTIFACT_FORMAT, "kind": "mystery"})
        )
        with pytest.raises(ArtifactError, match="unknown artifact kind"):
            load_artifact(tmp_path)

    def test_missing_weights(self, tmp_path, tiny_config, small_datasets):
        transfer = list(small_datasets.values())
        matcher = AnyMatchMatcher("gpt2").fit(transfer, tiny_config, seed=0)
        directory = save_artifact(matcher, tmp_path / "art")
        (directory / WEIGHTS_NAME).unlink()
        with pytest.raises(ArtifactError, match=WEIGHTS_NAME):
            load_artifact(directory)


class TestIntegrityChecks:
    def test_manifest_carries_verifiable_digest(self, tmp_path):
        directory = save_artifact(StringSimMatcher(), tmp_path / "s")
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert verify_digest(manifest)
        assert "_integrity" in manifest

    def test_tampered_manifest_quarantined(self, tmp_path):
        directory = save_artifact(StringSimMatcher(threshold=0.41), tmp_path / "s")
        manifest_path = directory / MANIFEST_NAME
        tampered = manifest_path.read_text().replace("0.41", "0.99")
        manifest_path.write_text(tampered)

        with pytest.raises(CorruptStateError, match="checksum") as info:
            load_artifact(directory)
        assert not manifest_path.exists()  # moved aside, not left in place
        assert ".corrupt-" in info.value.quarantined_to
        sidecar = list(directory.glob(f"{MANIFEST_NAME}.corrupt-*"))
        assert len(sidecar) == 1

    def test_tampered_weights_quarantined(
        self, tmp_path, tiny_config, small_datasets
    ):
        transfer = list(small_datasets.values())
        matcher = AnyMatchMatcher("gpt2").fit(transfer, tiny_config, seed=0)
        directory = save_artifact(matcher, tmp_path / "art")
        weights = directory / WEIGHTS_NAME
        damaged = bytearray(weights.read_bytes())
        damaged[len(damaged) // 2] ^= 0xFF
        weights.write_bytes(bytes(damaged))

        with pytest.raises(CorruptStateError, match="weights_sha256"):
            load_artifact(directory)
        assert not weights.exists()
        assert list(directory.glob(f"{WEIGHTS_NAME}.corrupt-*"))

    def test_footerless_legacy_manifest_still_loads(self, tmp_path):
        # Pre-integrity manifests have no digest footer; they must keep
        # loading (checksums are opt-in per file, not a format break).
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps(
                {
                    "format_version": ARTIFACT_FORMAT,
                    "kind": "string_sim",
                    "string_sim": {"threshold": 0.5},
                }
            )
        )
        reloaded = load_artifact(tmp_path)
        assert isinstance(reloaded, StringSimMatcher)

"""Tests for the quality-cost trade-off series."""

from __future__ import annotations

import pytest

from repro.cost.tradeoff import TradeoffPoint, build_tradeoff, pareto_front
from repro.errors import CostModelError


@pytest.fixture
def points():
    quality = {"cheap-good": 85.0, "cheap-bad": 60.0, "pricey-best": 90.0, "no-cost": 80.0}
    cost = {"cheap-good": 1e-5, "cheap-bad": 1e-5, "pricey-best": 1e-2}
    params = {"cheap-good": 100, "cheap-bad": 100, "pricey-best": 10_000, "no-cost": 13_000}
    return build_tradeoff(quality, cost, params)


class TestBuildTradeoff:
    def test_sorted_by_quality(self, points):
        f1s = [p.mean_f1 for p in points]
        assert f1s == sorted(f1s, reverse=True)

    def test_missing_cost_is_none(self, points):
        no_cost = next(p for p in points if p.matcher == "no-cost")
        assert no_cost.dollars_per_1k_tokens is None
        assert no_cost.params_millions == 13_000

    def test_empty_quality_raises(self):
        with pytest.raises(CostModelError):
            build_tradeoff({}, {}, {})


class TestParetoFront:
    def test_front_members(self, points):
        front = {p.matcher for p in pareto_front(points)}
        assert front == {"cheap-good", "pricey-best"}

    def test_dominated_point_excluded(self, points):
        assert "cheap-bad" not in {p.matcher for p in pareto_front(points)}

    def test_unpriced_points_excluded(self, points):
        assert "no-cost" not in {p.matcher for p in pareto_front(points)}

    def test_front_sorted_by_cost(self, points):
        front = pareto_front(points)
        costs = [p.dollars_per_1k_tokens for p in front]
        assert costs == sorted(costs)

    def test_single_point_is_front(self):
        point = TradeoffPoint("only", 50.0, 1e-3, 10)
        assert pareto_front([point]) == [point]

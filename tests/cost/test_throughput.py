"""Tests for the throughput simulator, including the Table-5 calibration."""

from __future__ import annotations

import pytest

from repro.cost.hardware import ACADEMIC_4XA100
from repro.cost.throughput import ThroughputSimulator
from repro.errors import CostModelError
from repro.models.cards import OPEN_WEIGHT_CARDS, get_card
from repro.study.paper_targets import TABLE5_THROUGHPUT


@pytest.fixture(scope="module")
def simulator() -> ThroughputSimulator:
    return ThroughputSimulator(ACADEMIC_4XA100)


class TestPlacement:
    @pytest.mark.parametrize(
        "model,expected",
        [("bert", 1), ("llama2-13b", 1), ("mixtral-8x7b", 2), ("beluga2", 4), ("solar", 4)],
    )
    def test_gpus_needed_matches_paper(self, simulator, model, expected):
        assert simulator.gpus_needed(get_card(model)) == expected

    def test_api_models_rejected(self, simulator):
        with pytest.raises(CostModelError):
            simulator.gpus_needed(get_card("gpt-4"))


class TestBatchSearch:
    def test_batch_is_power_of_two(self, simulator):
        for name in OPEN_WEIGHT_CARDS:
            batch = simulator.max_batch_size(get_card(name))
            assert batch & (batch - 1) == 0

    def test_small_models_fit_large_batches(self, simulator):
        assert simulator.max_batch_size(get_card("bert")) >= 2048
        assert simulator.max_batch_size(get_card("solar")) <= 128

    def test_within_4x_of_paper(self, simulator):
        """The memory model predicts batch sizes to the right order of
        magnitude (the paper's probe sizes depend on framework overheads
        the analytic model cannot see)."""
        for name in OPEN_WEIGHT_CARDS:
            batch = simulator.max_batch_size(get_card(name))
            paper = TABLE5_THROUGHPUT[name]["batch"]
            assert paper / 4 <= batch <= paper * 4, name


class TestThroughputCalibration:
    @pytest.mark.parametrize("name", OPEN_WEIGHT_CARDS)
    def test_matches_table5_within_2_percent(self, simulator, name):
        simulated = simulator.tokens_per_second(get_card(name))
        paper = TABLE5_THROUGHPUT[name]["tokens_per_s"]
        assert abs(simulated - paper) / paper < 0.02, name

    def test_ditto_fastest(self, simulator):
        rates = {n: simulator.tokens_per_second(get_card(n)) for n in OPEN_WEIGHT_CARDS}
        assert max(rates, key=rates.get) == "bert"

    def test_three_orders_of_magnitude_spread(self, simulator):
        rates = [simulator.tokens_per_second(get_card(n)) for n in OPEN_WEIGHT_CARDS]
        assert max(rates) / min(rates) > 1_000

    def test_slm_two_orders_above_llms(self, simulator):
        """Excluding Jellyfish, SLM throughput >= 100x the open LLMs."""
        slm_min = min(
            simulator.tokens_per_second(get_card(n))
            for n in ("bert", "gpt2", "deberta", "t5", "llama3.2-1b")
        )
        llm_max = max(
            simulator.tokens_per_second(get_card(n))
            for n in ("mixtral-8x7b", "beluga2", "solar")
        )
        assert slm_min / llm_max > 100

    def test_simulate_bundles_fields(self, simulator):
        result = simulator.simulate(get_card("bert"))
        assert result.model == "bert"
        assert result.n_gpus_used == 1
        assert result.tokens_per_second > 0

"""Tests for the hardware specifications."""

from __future__ import annotations

import pytest

from repro.cost.hardware import (
    A100_40GB,
    ACADEMIC_4XA100,
    AWS_P4D_24XLARGE,
    GPUSpec,
    MachineSpec,
)
from repro.errors import CostModelError


class TestSpecs:
    def test_a100_datasheet(self):
        assert A100_40GB.memory_gb == 40.0
        assert A100_40GB.peak_tflops == 312.0

    def test_paper_machines(self):
        assert ACADEMIC_4XA100.n_gpus == 4
        assert AWS_P4D_24XLARGE.n_gpus == 8
        assert AWS_P4D_24XLARGE.hourly_usd == 19.22

    def test_total_memory(self):
        assert AWS_P4D_24XLARGE.total_memory_gb == 320.0

    def test_invalid_gpu_raises(self):
        with pytest.raises(CostModelError):
            GPUSpec("bad", memory_gb=0, peak_tflops=1, memory_bandwidth_tb_s=1)

    def test_invalid_machine_raises(self):
        with pytest.raises(CostModelError):
            MachineSpec("bad", A100_40GB, n_gpus=0, hourly_usd=1.0)
        with pytest.raises(CostModelError):
            MachineSpec("bad", A100_40GB, n_gpus=1, hourly_usd=-1.0)

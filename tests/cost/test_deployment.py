"""Tests for the deployment cost model (Table 6)."""

from __future__ import annotations

import pytest

from repro.cost.deployment import DeploymentCostModel
from repro.cost.hardware import ACADEMIC_4XA100, MachineSpec
from repro.errors import CostModelError, ReproError
from repro.models.cards import get_card
from repro.study.paper_targets import TABLE6_COST


@pytest.fixture(scope="module")
def model() -> DeploymentCostModel:
    return DeploymentCostModel()


class TestSelfHosting:
    def test_cost_formula(self, model):
        """cost = p / (2 * throughput * 3600) * 1000 for the 8-GPU machine."""
        card = get_card("bert")
        throughput = model._simulator.tokens_per_second(card)
        expected = 19.22 / (2 * throughput * 3600) * 1000
        assert model.self_hosting_cost(card) == pytest.approx(expected)

    def test_scenario_label(self, model):
        assert model.self_hosting_scenario(get_card("bert")) == "8x on p4d.24xlarge"
        assert model.self_hosting_scenario(get_card("mixtral-8x7b")) == "4x on p4d.24xlarge"


class TestCheapestSelection:
    @pytest.mark.parametrize(
        "method,card,paper_cost",
        [
            ("Ditto", "bert", 0.0000031),
            ("AnyMatch[GPT-2]", "gpt2", 0.0000038),
            ("AnyMatch[T5]", "t5", 0.0000050),
            ("AnyMatch[LLaMA3.2]", "llama3.2-1b", 0.000010),
            ("Unicorn", "deberta", 0.000012),
            ("MatchGPT[GPT-4o-Mini]", "gpt-4o-mini", 0.000075),
            ("MatchGPT[GPT-3.5-Turbo]", "gpt-3.5-turbo", 0.00075),
            ("MatchGPT[SOLAR]", "solar", 0.0009),
            ("MatchGPT[Beluga2]", "beluga2", 0.0009),
            ("MatchGPT[GPT-4]", "gpt-4", 0.015),
        ],
    )
    def test_matches_table6_within_10_percent(self, model, method, card, paper_cost):
        result = model.cheapest(method, card)
        assert result.dollars_per_1k_tokens == pytest.approx(paper_cost, rel=0.10)

    def test_gpt4_vs_ditto_three_orders_of_magnitude(self, model):
        gpt4 = model.cheapest("MatchGPT[GPT-4]", "gpt-4").dollars_per_1k_tokens
        ditto = model.cheapest("Ditto", "bert").dollars_per_1k_tokens
        assert gpt4 / ditto > 1_000

    def test_api_model_scenario(self, model):
        assert model.cheapest("m", "gpt-4").scenario == "OpenAI Batch API"

    def test_hosted_beats_self_host_for_large_models(self, model):
        assert model.cheapest("m", "solar").scenario == "Hosting on Together.ai"

    def test_unknown_api_model_raises(self, model):
        with pytest.raises(ReproError):  # unknown card name
            model.cheapest("m", "unknown")


class TestPriceRun:
    def test_linear_in_tokens(self, model):
        per_1k = model.cheapest("x", "gpt-4").dollars_per_1k_tokens
        assert model.price_run("gpt-4", 2_000) == pytest.approx(2 * per_1k)

    def test_negative_tokens_raise(self, model):
        with pytest.raises(CostModelError):
            model.price_run("gpt-4", -1)


class TestConstruction:
    def test_free_cloud_machine_rejected(self):
        with pytest.raises(CostModelError):
            DeploymentCostModel(cloud_machine=ACADEMIC_4XA100)

    def test_scale_factor(self, model):
        assert model.scale_factor == 2.0

"""Table 1 bench: synthesise all 11 benchmarks and report their statistics."""

from __future__ import annotations

from repro.data.generators import build_dataset
from repro.study import table1, table2

from _common import bench_config, save_result


def test_table1_dataset_synthesis(benchmark):
    config = bench_config()

    def regenerate():
        build_dataset.cache_clear()
        return table1.run(config)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rendered = result.render()
    save_result("table1", rendered)
    print("\n" + rendered)
    # Invariant: generated counts scale the Table-1 statistics.
    for row in result.rows:
        assert row["#pos(gen)"] == max(4, round(row["#pos"] * config.dataset_scale))


def test_table2_taxonomy(benchmark):
    result = benchmark(table2.run)
    rendered = result.render()
    save_result("table2", rendered)
    print("\n" + rendered)
    assert len(result.rows) == 7

"""Extension bench: retrieval-augmented demonstrations (Section 5.1 future work)."""

from __future__ import annotations

from dataclasses import replace

from repro.study.extensions import run_rag_extension

from _common import bench_config, bench_targets, save_result


def test_rag_extension(benchmark):
    # Simulated-only experiment: full test sets keep effects out of noise.
    config = replace(bench_config(), test_fraction=1.0, dataset_scale=0.2)
    result = benchmark.pedantic(
        run_rag_extension,
        kwargs={"model": "gpt-3.5-turbo", "config": config, "codes": bench_targets()},
        rounds=1,
        iterations=1,
    )
    rendered = result.render()
    save_result("rag_extension", rendered)
    print("\n" + rendered)

    # The hard fact: retrieval multiplies prompt length.
    assert result.prompt_tokens["retrieved"] > 2 * result.prompt_tokens["none"]
    # Under the modelled hypothesis, relevance-selected demos do not hurt
    # the way random OOD demos can.
    assert (
        result.results["retrieved"].mean_f1
        >= result.results["random-selected"].mean_f1 - 2.0
    )

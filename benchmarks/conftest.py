"""Make benchmarks/ importable as a flat directory (for _common)."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

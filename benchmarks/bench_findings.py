"""Findings bench: the Finding-5 t-test and Finding-6 skew correlation."""

from __future__ import annotations

import json
from pathlib import Path

from repro.study import findings
from repro.study.paper_targets import TABLE3_F1

from _common import save_result

_FULL_STUDY = Path(__file__).resolve().parent.parent / "results" / "full_study.json"


def _per_dataset() -> tuple[dict[str, dict[str, float]], str]:
    if _FULL_STUDY.exists():
        document = json.loads(_FULL_STUDY.read_text())
        table = document["table3"]["per_dataset"]
        if "MatchGPT[GPT-3.5-Turbo]" in table:
            return table, "measured (results/full_study.json)"
    return dict(TABLE3_F1), "paper Table-3 scores"


def test_findings_5_and_6(benchmark):
    per_dataset, source = _per_dataset()
    result = benchmark(findings.run, per_dataset)
    rendered = f"score source: {source}\n\n" + result.render()
    save_result("findings", rendered)
    print("\n" + rendered)

    # Hard assertions on the calibrated-envelope matchers (their behaviour
    # is pinned to the paper); trained surrogates are reported only.
    envelope = [name for name in result.overlap_tests
                if name.startswith(("MatchGPT", "Jellyfish"))]
    assert envelope, "findings need the prompted-model rows"
    # Finding 5: same-domain transfer data gives no significant boost.
    assert not any(result.overlap_tests[name].rejects_null for name in envelope)
    # Finding 6: weak monotonic relationship with label skew.
    envelope_rho = [abs(result.skew_correlations[name].rho) for name in envelope]
    assert sum(envelope_rho) / len(envelope_rho) < 0.45

"""Table 6 bench: cost per 1K tokens under the cheapest deployment."""

from __future__ import annotations

from repro.study import table6
from repro.study.paper_targets import TABLE6_COST

from _common import save_result


def test_table6_deployment_cost(benchmark):
    result = benchmark(table6.run)
    rendered = result.render()
    save_result("table6", rendered)
    print("\n" + rendered)

    costs = result.cost_table()
    # Endpoints of the spread match the paper's quotes.
    assert costs["MatchGPT[GPT-4]"] == TABLE6_COST["MatchGPT[GPT-4]"]["cost"]
    assert abs(costs["Ditto"] - TABLE6_COST["Ditto[Bert]"]["cost"]) / TABLE6_COST[
        "Ditto[Bert]"
    ]["cost"] < 0.05
    # Finding: GPT-4 is thousands of times more expensive than Ditto.
    assert costs["MatchGPT[GPT-4]"] / costs["Ditto"] > 4_000
    benchmark.extra_info["costs"] = {k: f"{v:.7f}" for k, v in costs.items()}

"""Inference fast-path bench: fused no-grad kernels vs the autograd path.

For each surrogate family (encoder, MoE, decoder, seq2seq) a smoke-scale
model runs the same variable-length batched workload through
``predict_proba`` twice:

* **reference** — the pre-existing autograd ``Tensor`` path: float64,
  no fused kernels, every batch padded to the global ``max_len``;
* **fast** — the :mod:`repro.nn.fastpath` kernels with float32 weights
  and length-bucketed batching (the defaults for predict/serving).

Parity is asserted before any throughput is reported: a float64
fast-path pass must reproduce the reference probabilities **bit for
bit**, and the float32 pass must stay within the tolerance documented in
``repro.nn.fastpath``.  An end-to-end section repeats the comparison
through a fitted Ditto matcher's ``match_scores`` so the speedup covers
the full matcher path, not just the model call.

The aggregate speedup is compared against the ``floor`` recorded in
``BENCH_inference.json`` at the repository root — CI fails if a change
regresses batched inference below that floor.

Run directly (``python benchmarks/bench_inference.py``, ``--smoke`` for
the CI-sized workload) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.config import StudyConfig, SurrogateScale, inference_overrides
from repro.data import build_dataset
from repro.matchers.ditto import DittoMatcher
from repro.models import (
    CausalLMClassifier,
    EncoderClassifier,
    MoEClassifier,
    Seq2SeqClassifier,
)
from repro.models.training import EncodedPairs, predict_proba
from repro.nn import fastpath

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_inference.json"

#: Minimum aggregate fast-over-reference speedup CI enforces.
_SPEEDUP_FLOOR = 1.5

_FAMILIES = ("encoder", "moe", "decoder", "seq2seq")

#: Reference knobs = the pre-fast-path prediction pipeline.
_REFERENCE = dict(fast_path=False, float32=False, bucket_by_length=False)
#: Fast knobs = the shipped defaults for predict/serving.
_FAST = dict(fast_path=True, float32=True, bucket_by_length=True)


def _build_model(family: str, scale: SurrogateScale, rng: np.random.Generator):
    common = dict(
        vocab_size=scale.vocab_size, dim=scale.d_model, n_layers=scale.n_layers,
        n_heads=scale.n_heads, d_ff=scale.d_ff, max_len=scale.max_len, rng=rng,
    )
    if family == "encoder":
        return EncoderClassifier(**common)
    if family == "moe":
        return MoEClassifier(n_experts=2, **common)
    if family == "decoder":
        return CausalLMClassifier(yes_id=5, no_id=6, **common)
    return Seq2SeqClassifier(yes_id=5, no_id=6, start_id=2, **common)


def _workload(scale: SurrogateScale, n_pairs: int, rng: np.random.Generator) -> EncodedPairs:
    """Variable-length ids/pad/flags, the shape real encoded pairs have."""
    ids = rng.integers(0, scale.vocab_size, size=(n_pairs, scale.max_len))
    lengths = rng.integers(max(2, scale.max_len // 8), scale.max_len + 1, size=n_pairs)
    pad_mask = np.arange(scale.max_len)[None, :] >= lengths[:, None]
    shared = rng.integers(0, 3, size=(n_pairs, scale.max_len))
    return EncodedPairs(ids, pad_mask, np.zeros(0, dtype=np.int64), shared)


def _best_time(fn, repeats: int) -> tuple[np.ndarray, float]:
    """Best-of-``repeats`` wall-clock (first call also warms the caches)."""
    best, result = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _bench_family(
    family: str, scale: SurrogateScale, n_pairs: int, batch_size: int, repeats: int
) -> dict:
    rng = np.random.default_rng(11)
    model = _build_model(family, scale, rng)
    model.eval()
    data = _workload(scale, n_pairs, rng)
    tokens = float((~data.pad_mask).sum())

    def run(knobs):
        return lambda: predict_proba(model, data, batch_size=batch_size, **knobs)

    # Warm mask/cast caches before any timed pass.
    run(_FAST)()
    reference, reference_s = _best_time(run(_REFERENCE), repeats)
    fast, fast_s = _best_time(run(_FAST), repeats)
    exact, _ = _best_time(run(dict(fast_path=True, float32=False, bucket_by_length=False)), 1)

    assert np.array_equal(reference, exact), (
        f"{family}: float64 fast path is not byte-identical to the reference path"
    )
    fp32_delta = float(np.max(np.abs(fast - reference)))
    assert fp32_delta <= fastpath.FLOAT32_ATOL, (
        f"{family}: float32 drift {fp32_delta} exceeds documented tolerance"
    )
    return {
        "family": family,
        "n_pairs": n_pairs,
        "tokens": int(tokens),
        "reference_s": round(reference_s, 5),
        "fast_s": round(fast_s, 5),
        "speedup": round(reference_s / fast_s, 3),
        "reference_tokens_per_s": round(tokens / reference_s, 1),
        "fast_tokens_per_s": round(tokens / fast_s, 1),
        "float64_byte_identical": True,
        "float32_max_abs_prob_delta": fp32_delta,
    }


def _bench_end_to_end(smoke: bool, repeats: int) -> dict:
    """The same comparison through a fitted Ditto matcher's scoring path."""
    config = StudyConfig(
        name="bench-inference",
        seeds=(0,),
        test_fraction=0.25,
        train_pair_budget=150 if smoke else 400,
        epochs=2,
        dataset_scale=0.05,
        surrogate=SurrogateScale(
            d_model=32, n_layers=1, n_heads=2, d_ff=64, max_len=48, vocab_size=2048
        ),
    )
    transfer = [build_dataset(code, config.dataset_scale, seed=7)[0]
                for code in ("ABT", "DBAC")]
    matcher = DittoMatcher().fit(transfer, config, seed=0)
    dataset, _world = build_dataset("BEER", 0.1 if smoke else 0.25, seed=7)
    pairs = dataset.pairs

    def run(knobs):
        def call():
            with inference_overrides(**knobs):
                return matcher.match_scores(pairs, serialization_seed=0)
        return call

    run(dict(fast_path=True, float32=True, bucketing=True))()
    reference, reference_s = _best_time(run(dict(fast_path=False, float32=False,
                                                 bucketing=False)), repeats)
    fast, fast_s = _best_time(run(dict(fast_path=True, float32=True, bucketing=True)), repeats)
    exact, _ = _best_time(run(dict(fast_path=True, float32=False, bucketing=False)), 1)

    assert np.array_equal(reference, exact), (
        "end-to-end: float64 fast path is not byte-identical to the reference path"
    )
    fp32_delta = float(np.max(np.abs(fast - reference)))
    assert fp32_delta <= fastpath.FLOAT32_ATOL
    return {
        "matcher": matcher.display_name,
        "pairs": len(pairs),
        "reference_s": round(reference_s, 5),
        "fast_s": round(fast_s, 5),
        "speedup": round(reference_s / fast_s, 3),
        "float64_byte_identical": True,
        "float32_max_abs_score_delta": fp32_delta,
        "float32_label_agreement": float(
            np.mean((np.asarray(fast) > 0.5) == (np.asarray(reference) > 0.5))
        ),
    }


def run_bench(smoke: bool = False, out_path: Path = _OUT_PATH) -> dict:
    """Benchmark every family plus end-to-end Ditto; write the document."""
    scale = SurrogateScale(
        d_model=48, n_layers=2, n_heads=4, d_ff=96, max_len=64, vocab_size=4096
    )
    n_pairs = 96 if smoke else 384
    repeats = 2 if smoke else 3

    families = [
        _bench_family(family, scale, n_pairs, batch_size=32, repeats=repeats)
        for family in _FAMILIES
    ]
    end_to_end = _bench_end_to_end(smoke, repeats)

    total_reference = sum(f["reference_s"] for f in families)
    total_fast = sum(f["fast_s"] for f in families)
    document = {
        "bench": "inference",
        "profile": "smoke" if smoke else "full",
        "floor": _SPEEDUP_FLOOR,
        "workload": {
            "families": list(_FAMILIES),
            "n_pairs_per_family": n_pairs,
            "surrogate": dict(vars(scale)),
            "batch_size": 32,
            "lengths": "uniform in [max_len/8, max_len]",
        },
        "reference": "autograd Tensor path, float64, global max_len padding",
        "fast": "fastpath kernels, float32 weights, length-bucketed batches",
        "families": families,
        "end_to_end": end_to_end,
        "aggregate_speedup": round(total_reference / total_fast, 3),
        "parity": {
            "float64_byte_identical": True,
            "float32_tolerance": {
                "rtol": fastpath.FLOAT32_RTOL,
                "atol": fastpath.FLOAT32_ATOL,
            },
        },
    }
    assert document["aggregate_speedup"] >= _SPEEDUP_FLOOR, (
        f"aggregate speedup {document['aggregate_speedup']} below floor {_SPEEDUP_FLOOR}"
    )
    out_path.write_text(json.dumps(document, indent=2) + "\n")
    for f in families:
        print(
            f"[bench_inference] {f['family']:>8}: {f['speedup']:.2f}x "
            f"({f['reference_tokens_per_s']:,.0f} -> {f['fast_tokens_per_s']:,.0f} tokens/s)",
            flush=True,
        )
    print(
        f"[bench_inference] end-to-end {end_to_end['matcher']}: "
        f"{end_to_end['speedup']:.2f}x; aggregate {document['aggregate_speedup']}x "
        f"(floor {_SPEEDUP_FLOOR}x) -> {out_path}",
        flush=True,
    )
    return document


def test_inference_bench_smoke(tmp_path):
    """CI smoke: parity holds and the speedup clears the recorded floor."""
    document = run_bench(smoke=True, out_path=tmp_path / "BENCH_inference_smoke.json")
    floor = document["floor"]
    if _OUT_PATH.exists():
        floor = max(floor, json.loads(_OUT_PATH.read_text())["floor"])
    assert document["aggregate_speedup"] >= floor
    assert document["parity"]["float64_byte_identical"]
    for family in document["families"]:
        assert family["float64_byte_identical"]
        assert family["float32_max_abs_prob_delta"] <= fastpath.FLOAT32_ATOL
    assert document["end_to_end"]["float64_byte_identical"]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``--smoke`` for the CI-sized workload)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized workload")
    parser.add_argument("--out", default=str(_OUT_PATH))
    args = parser.parse_args(argv)
    run_bench(smoke=args.smoke, out_path=Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

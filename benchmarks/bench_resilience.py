"""Resilience bench: hedged tail latency and breaker availability.

Two claims from the resilience control plane are made measurable:

**Hedging cuts the tail.**  A workload whose calls usually finish in
~1 ms but straggle to ~30 ms once every 20 requests is run twice — bare,
and under a :class:`repro.reliability.hedge.HedgedCall` with a ~4 ms
hedge delay.  The hedged p99 must be at least 1.5x better, and because
both attempts compute the same pure function, the answer stream must be
byte-identical to the unhedged run (hedging may only change *when* an
answer arrives, never *what* it is).

**Breakers buy availability per backend call.**  A two-rung router
escalates every pair to an authority that goes down for a window of the
drill (each doomed call also stalls a simulated second — the retry-storm
tax).  Routed with a :class:`repro.reliability.breaker.CircuitBreaker`
on the authority versus without one, both arms must answer 100% of
requests (failures degrade to band-midpoint decisions, never error),
but the breaker arm must pay at most half the doomed backend calls and
at most half the stall time: the breaker converts hammering a dead
backend into instant degradation plus a probe every cooldown.

Results are written to ``BENCH_resilience.json`` at the repository
root.  Run directly (``python benchmarks/bench_resilience.py``,
``--smoke`` for a CI-sized subset) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.data.pairs import RecordPair
from repro.data.record import Record
from repro.errors import TransientLLMError
from repro.matchers.base import Matcher
from repro.reliability.breaker import STATE_CLOSED, CircuitBreaker
from repro.reliability.clock import FakeClock
from repro.reliability.hedge import HedgedCall
from repro.routing import MatchRouter, RoutedBackend

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_resilience.json"

#: Hedging workload shape: mostly-fast calls with a periodic straggler.
_BASE_LATENCY_S = 0.001
_STRAGGLER_LATENCY_S = 0.030
_STRAGGLER_EVERY = 20
_HEDGE_DELAY_S = 0.004
#: Acceptance bars the checked-in result must clear.
_MIN_P99_RATIO = 1.5
_MIN_CALL_REDUCTION = 2.0
_MIN_STALL_REDUCTION = 2.0

#: Flapping-backend drill shape (all times on a fake clock).
_FLAP_DOWN_FROM_S = 10.0
_FLAP_DOWN_UNTIL_S = 30.0
_FLAP_INTERARRIVAL_S = 0.25
_FLAP_FAIL_STALL_S = 1.0
_FLAP_OK_STALL_S = 0.01


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


# -- scenario 1: hedged tail latency ------------------------------------------


def _bench_hedging(n_calls: int) -> dict:
    """Race the straggler workload bare vs hedged; compare the p99s."""

    def answer(i: int) -> int:
        return i % 2

    def duration(i: int, attempt: int) -> float:
        # Only the primary attempt straggles: the hedge is a fresh call
        # that lands on a healthy replica, the Dean & Barroso premise.
        if attempt == 0 and i % _STRAGGLER_EVERY == 0:
            return _STRAGGLER_LATENCY_S
        return _BASE_LATENCY_S

    bare_latencies, bare_answers = [], []
    for i in range(n_calls):
        started = time.monotonic()
        time.sleep(duration(i, 0))
        bare_answers.append(answer(i))
        bare_latencies.append(time.monotonic() - started)

    hedge = HedgedCall(hedge_delay_s=_HEDGE_DELAY_S, count=False)
    hedged_latencies, hedged_answers = [], []
    for i in range(n_calls):

        def attempt(index: int, _cancel, i=i) -> int:
            time.sleep(duration(i, index))
            return answer(i)

        started = time.monotonic()
        hedged_answers.append(hedge.call(attempt))
        hedged_latencies.append(time.monotonic() - started)

    bare_p99 = _percentile(bare_latencies, 0.99)
    hedged_p99 = _percentile(hedged_latencies, 0.99)
    identical = json.dumps(bare_answers) == json.dumps(hedged_answers)
    return {
        "calls": n_calls,
        "straggler_every": _STRAGGLER_EVERY,
        "base_latency_ms": 1000.0 * _BASE_LATENCY_S,
        "straggler_latency_ms": 1000.0 * _STRAGGLER_LATENCY_S,
        "hedge_delay_ms": 1000.0 * _HEDGE_DELAY_S,
        "bare": {
            "p50_ms": round(1000.0 * _percentile(bare_latencies, 0.50), 3),
            "p99_ms": round(1000.0 * bare_p99, 3),
        },
        "hedged": {
            "p50_ms": round(1000.0 * _percentile(hedged_latencies, 0.50), 3),
            "p99_ms": round(1000.0 * hedged_p99, 3),
            "hedges_launched": int(hedge.counters["hedges_launched"]),
            "hedge_wins": int(hedge.counters["hedge_wins"]),
            "hedge_waste": int(hedge.counters["hedge_waste"]),
        },
        "p99_ratio": round(bare_p99 / max(hedged_p99, 1e-9), 2),
        "answers_identical": identical,
    }


# -- scenario 2: breaker availability under a flapping backend -----------------


class _MidScorer(Matcher):
    """Scores every pair mid-band, forcing an escalation request."""

    name = "mid"
    display_name = "Mid"

    def _predict(self, pairs, serialization_seed):
        return np.zeros(len(pairs), dtype=np.int64)

    def match_scores(self, pairs, serialization_seed=None):
        return np.full(len(pairs), 0.5)


class _FlappingAuthority(Matcher):
    """Fails (with a stall) inside the down window, answers 1 otherwise."""

    name = "flapping"
    display_name = "Flapping"

    def __init__(self, clock: FakeClock) -> None:
        super().__init__()
        self.clock = clock
        self.calls = 0
        self.failures = 0
        self.stall_s = 0.0

    def _predict(self, pairs, serialization_seed):
        self.calls += 1
        now = self.clock.monotonic()
        if _FLAP_DOWN_FROM_S <= now < _FLAP_DOWN_UNTIL_S:
            self.failures += 1
            self.stall_s += _FLAP_FAIL_STALL_S
            self.clock.advance(_FLAP_FAIL_STALL_S)
            raise TransientLLMError("authority is down")
        self.stall_s += _FLAP_OK_STALL_S
        self.clock.advance(_FLAP_OK_STALL_S)
        return np.ones(len(pairs), dtype=np.int64)


def _request_pair(i: int) -> RecordPair:
    """One unique in-band request pair."""
    left = Record(f"b{i}-l", (f"acme widget {i}",), "e1", source="left")
    right = Record(f"b{i}-r", (f"acme widget {i}",), "e1", source="right")
    return RecordPair(f"b{i}", left, right, label=1)


def _run_flap_arm(n_requests: int, with_breaker: bool) -> dict:
    """Drive the flapping drill through one router arm."""
    clock = FakeClock()
    authority = _FlappingAuthority(clock)
    breaker = (
        # A short window and a 50% rate keep the healthy traffic that
        # precedes the outage from diluting the failure rate: the
        # breaker reacts to the last few seconds, not the whole drill.
        CircuitBreaker(
            name="authority",
            min_requests=3,
            failure_threshold=0.5,
            window_s=3.0,
            open_duration_s=5.0,
            half_open_probes=1,
            clock=clock,
            count=False,
        )
        if with_breaker
        else None
    )
    router = MatchRouter(
        backends=[
            RoutedBackend(name="cheap", matcher=_MidScorer(), low=0.3, high=0.7),
            RoutedBackend(name="authority", matcher=authority, breaker=breaker),
        ],
        clock=clock,
    )
    answered = 0
    degraded = 0
    for i in range(n_requests):
        decisions = router.route([_request_pair(i)])
        answered += len(decisions)
        degraded += sum(
            1 for d in decisions if d.backend_failed or d.breaker_open
        )
        clock.advance(_FLAP_INTERARRIVAL_S)
    arm = {
        "arm": "breaker" if with_breaker else "no_breaker",
        "requests": n_requests,
        "answered": answered,
        "degraded": degraded,
        "authority_calls": authority.calls,
        "authority_failures": authority.failures,
        "stall_s": round(authority.stall_s, 3),
    }
    if breaker is not None:
        arm["breaker"] = {
            "final_state": breaker.state,
            "opens": int(breaker.counters["opens"]),
            "closes": int(breaker.counters["closes"]),
            "rejected": int(breaker.counters["rejected"]),
        }
    return arm


def _bench_flapping(n_requests: int) -> dict:
    """The flapping drill, with and without the breaker."""
    bare = _run_flap_arm(n_requests, with_breaker=False)
    guarded = _run_flap_arm(n_requests, with_breaker=True)
    return {
        "down_window_s": [_FLAP_DOWN_FROM_S, _FLAP_DOWN_UNTIL_S],
        "interarrival_s": _FLAP_INTERARRIVAL_S,
        "fail_stall_s": _FLAP_FAIL_STALL_S,
        "no_breaker": bare,
        "breaker": guarded,
        "call_reduction": round(
            bare["authority_failures"]
            / max(guarded["authority_failures"], 1),
            2,
        ),
        "stall_reduction": round(
            bare["stall_s"] / max(guarded["stall_s"], 1e-9), 2
        ),
    }


# -- harness -------------------------------------------------------------------


def run_bench(smoke: bool = False, out_path: Path = _OUT_PATH) -> dict:
    """Run both scenarios, assert the acceptance bars, write the doc."""
    hedging = _bench_hedging(n_calls=100 if smoke else 400)
    flapping = _bench_flapping(n_requests=200 if smoke else 600)

    availability_ok = (
        flapping["no_breaker"]["answered"] == flapping["no_breaker"]["requests"]
        and flapping["breaker"]["answered"] == flapping["breaker"]["requests"]
    )
    criteria = {
        "p99_ratio": hedging["p99_ratio"],
        "p99_ratio_target": _MIN_P99_RATIO,
        "answers_identical": hedging["answers_identical"],
        "availability_1_0_both_arms": availability_ok,
        "call_reduction": flapping["call_reduction"],
        "call_reduction_target": _MIN_CALL_REDUCTION,
        "stall_reduction": flapping["stall_reduction"],
        "stall_reduction_target": _MIN_STALL_REDUCTION,
    }
    criteria["passed"] = (
        criteria["p99_ratio"] >= _MIN_P99_RATIO
        and criteria["answers_identical"]
        and availability_ok
        and criteria["call_reduction"] >= _MIN_CALL_REDUCTION
        and criteria["stall_reduction"] >= _MIN_STALL_REDUCTION
    )
    document = {
        "bench": "resilience",
        "profile": "bench-resilience" + ("-smoke" if smoke else ""),
        "hedging": hedging,
        "flapping_backend": flapping,
        "criteria": criteria,
        "note": (
            "hedging races real sleeps, so the p99s are wall-clock; the "
            "flapping drill runs entirely on a FakeClock, so its stall "
            "seconds are simulated and deterministic.  Both arms of the "
            "flapping drill answer every request — backend failure "
            "degrades to the band midpoint (backend_failed) and an open "
            "breaker degrades instantly (breaker_open); the breaker's "
            "win is paying fewer doomed calls, not answering more."
        ),
    }
    assert criteria["passed"], f"acceptance not met: {criteria}"
    assert flapping["breaker"]["breaker"]["opens"] >= 1
    assert flapping["breaker"]["breaker"]["final_state"] == STATE_CLOSED
    out_path.write_text(json.dumps(document, indent=2) + "\n")
    print(
        f"[bench_resilience] hedging p99 {hedging['bare']['p99_ms']}ms -> "
        f"{hedging['hedged']['p99_ms']}ms ({hedging['p99_ratio']}x), "
        f"answers identical: {hedging['answers_identical']}",
        flush=True,
    )
    print(
        f"[bench_resilience] flapping: doomed calls "
        f"{flapping['no_breaker']['authority_failures']} -> "
        f"{flapping['breaker']['authority_failures']} "
        f"({flapping['call_reduction']}x fewer), stall "
        f"{flapping['no_breaker']['stall_s']}s -> "
        f"{flapping['breaker']['stall_s']}s -> {out_path}",
        flush=True,
    )
    return document


def test_resilience_bench_smoke(tmp_path):
    """CI smoke: both scenarios clear their bars at the smoke scale."""
    document = run_bench(
        smoke=True, out_path=tmp_path / "BENCH_resilience_smoke.json"
    )
    assert document["criteria"]["passed"]
    assert document["hedging"]["answers_identical"]
    assert document["hedging"]["hedged"]["hedges_launched"] >= 1
    flapping = document["flapping_backend"]
    assert flapping["breaker"]["answered"] == flapping["breaker"]["requests"]
    assert flapping["breaker"]["breaker"]["final_state"] == STATE_CLOSED


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``--smoke`` for the CI subset, ``--out`` to redirect."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized subset")
    parser.add_argument("--out", default=str(_OUT_PATH))
    args = parser.parse_args(argv)
    run_bench(smoke=args.smoke, out_path=Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

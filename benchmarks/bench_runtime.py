"""Runtime speedup bench: worker pools and the completion cache.

Runs a fixed small study grid — Table-3-style MatchGPT rows followed by
the Table-4 ``none``-strategy re-serialisation workload, which re-sends
exactly the same prompts — under several runtime configurations:

* serial, no cache (the reference),
* thread pools of 2 and 4 workers, no cache,
* serial + completion cache,
* 4 workers + completion cache (the full runtime).

Every configuration must produce bit-identical result tables; the bench
asserts that before reporting wall-clock.  Results are written to
``BENCH_runtime.json`` at the repository root so the perf trajectory is
tracked across PRs.

Run directly (``python benchmarks/bench_runtime.py``, ``--smoke`` for a
CI-sized grid) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.config import StudyConfig, SurrogateScale
from repro.llm.prompts import DemonstrationStrategy
from repro.runtime.cache import CompletionCache, activate, deactivate
from repro.runtime.executor import make_executor
from repro.runtime import grid
from repro.study import table3, table4

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_runtime.json"

#: The benched grid: prompted models only (no surrogate training), so the
#: measured work is the LLM request path the runtime accelerates.
_MODELS = ("gpt-4o-mini", "gpt-3.5-turbo", "gpt-4")
_MATCHERS = tuple(
    {"gpt-4o-mini": "MatchGPT[GPT-4o-Mini]",
     "gpt-3.5-turbo": "MatchGPT[GPT-3.5-Turbo]",
     "gpt-4": "MatchGPT[GPT-4]"}[m]
    for m in _MODELS
)
_CODES = ("ABT", "DBAC", "BEER")


def _bench_config(smoke: bool) -> StudyConfig:
    return StudyConfig(
        name="bench-runtime",
        seeds=(0, 1),
        test_fraction=0.2 if smoke else 1.0,
        train_pair_budget=120,
        epochs=1,
        dataset_scale=0.05 if smoke else 0.12,
        surrogate=SurrogateScale(
            d_model=16, n_layers=1, n_heads=2, d_ff=32, max_len=32, vocab_size=1024
        ),
    )


def _run_grid(config: StudyConfig, workers: int, use_cache: bool, repeats: int = 1) -> dict:
    """Timed passes over the benched grid; returns tables + accounting.

    The workload is deterministic, so each configuration runs ``repeats``
    times and reports the *minimum* wall-clock — the standard way to
    strip scheduler noise from a shared single-core box.  Every repeat
    starts from a fresh cache and must reproduce the same tables.
    """
    walls = []
    tables = None
    cache = None
    for _ in range(repeats):
        deactivate()
        cache = activate(CompletionCache()) if use_cache else None
        executor = make_executor(
            workers=workers, backend="thread" if workers > 1 else "serial"
        )
        started = time.perf_counter()
        try:
            t3 = table3.run(
                config, _MATCHERS, codes=_CODES, executor=executor, use_cache=use_cache
            )
            # The Table-4 re-serialisation workload: the ``none`` strategy
            # re-sends Table 3's prompts for the same models verbatim.
            t4 = table4.run(
                config,
                models=_MODELS,
                codes=_CODES,
                executor=executor,
                use_cache=use_cache,
                strategies=(DemonstrationStrategy.NONE,),
            )
        finally:
            executor.close()
            deactivate()
        walls.append(time.perf_counter() - started)
        repeat_tables = {
            "table3": t3.per_dataset_table(),
            "table4": {
                f"{model}|{strategy}": row.dataset_means()
                for (model, strategy), row in t4.results.items()
            },
        }
        assert tables is None or repeat_tables == tables, (
            f"workers={workers} cache={use_cache}: results drifted across repeats"
        )
        tables = repeat_tables
    return {
        "workers": workers,
        "backend": "thread" if workers > 1 else "serial",
        "cache": use_cache,
        "wall_seconds": round(min(walls), 3),
        "wall_seconds_all": [round(w, 3) for w in walls],
        "cache_counters": cache.counters() if cache else None,
        "tables": tables,
    }


def run_bench(smoke: bool = False, out_path: Path = _OUT_PATH) -> dict:
    config = _bench_config(smoke)
    # Warm the per-process dataset memo so no configuration pays (or is
    # credited for) one-off dataset synthesis.
    grid.dataset_bundle(config.dataset_scale, 7)

    repeats = 1 if smoke else 3
    runs = [
        _run_grid(config, workers=1, use_cache=False, repeats=repeats),
        _run_grid(config, workers=2, use_cache=False, repeats=repeats),
        _run_grid(config, workers=4, use_cache=False, repeats=repeats),
        _run_grid(config, workers=1, use_cache=True, repeats=repeats),
        _run_grid(config, workers=4, use_cache=True, repeats=repeats),
    ]

    reference = runs[0]
    for run in runs[1:]:
        assert run["tables"] == reference["tables"], (
            f"runtime config workers={run['workers']} cache={run['cache']} "
            "changed study results"
        )

    def wall(workers: int, cache: bool) -> float:
        return next(
            r["wall_seconds"] for r in runs
            if r["workers"] == workers and r["cache"] == cache
        )

    serial = wall(1, False)
    cached_4w = next(r for r in runs if r["workers"] == 4 and r["cache"])
    document = {
        "bench": "runtime",
        "profile": config.name + ("-smoke" if smoke else ""),
        "grid": {
            "matchers": list(_MATCHERS),
            "codes": list(_CODES),
            "seeds": list(config.seeds),
            "phases": ["table3", "table4/none (re-serialisation workload)"],
        },
        "cpu_count": os.cpu_count(),
        "runs": [
            {k: v for k, v in r.items() if k != "tables"} for r in runs
        ],
        "results_identical_across_configs": True,
        "speedup_at_2_workers": round(serial / wall(2, False), 3),
        "speedup_at_4_workers_no_cache": round(serial / wall(4, False), 3),
        "speedup_at_4_workers": round(serial / wall(4, True), 3),
        "speedup_serial_cache": round(serial / wall(1, True), 3),
        "table4_reserialization_cache_hit_rate": round(
            cached_4w["cache_counters"]["hits"]
            / max(1, cached_4w["cache_counters"]["hits"]
                  + cached_4w["cache_counters"]["misses"]),
            4,
        ),
        "note": (
            "speedup_at_4_workers compares the full runtime (4-worker pool "
            "+ completion cache) against the serial no-cache reference on "
            "this machine; on a single shared CPU core the pool adds little "
            "and the cache, which answers the Table-4 re-serialisation "
            "workload from memory, carries the win."
        ),
    }
    out_path.write_text(json.dumps(document, indent=2) + "\n")
    for run in document["runs"]:
        print(
            f"[bench_runtime] workers={run['workers']} cache={run['cache']}: "
            f"{run['wall_seconds']:.2f}s",
            flush=True,
        )
    print(
        f"[bench_runtime] speedup at 4 workers (cached): "
        f"{document['speedup_at_4_workers']}x, cache hit rate "
        f"{document['table4_reserialization_cache_hit_rate']:.0%} -> {out_path}",
        flush=True,
    )
    return document


def test_runtime_speedup_smoke():
    """CI smoke: configs agree bit-for-bit and the cache actually hits."""
    document = run_bench(smoke=True)
    assert document["results_identical_across_configs"]
    assert document["table4_reserialization_cache_hit_rate"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized grid")
    parser.add_argument("--out", default=str(_OUT_PATH))
    args = parser.parse_args(argv)
    run_bench(smoke=args.smoke, out_path=Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Routing bench: token-dollar cost of the router vs always-escalate.

The claim under test is the paper's cost/quality frontier made
operational: a :class:`repro.routing.MatchRouter` whose cheap rung
carries a confidence band calibrated at 99% purity (on a *disjoint*
calibration split, seed 11) should cut the GPT-4 token bill by >= 2x on
the evaluation split (seed 7) while staying within 0.5 F1 points of
sending every pair to GPT-4.  Both arms price requests identically —
:func:`repro.routing.request_tokens` at the published GPT-4 batch rate
(:mod:`repro.llm.pricing`) — so the ratio is a pure routing effect.

A second pass re-routes the same trace under a deliberately starved
:class:`repro.routing.SpendLedger` to demonstrate budget-exhaustion
behaviour: escalations the ledger refuses degrade to band-midpoint
decisions flagged ``budget_limited`` (the request never fails).

Results are written to ``BENCH_routing.json`` at the repository root.
Run directly (``python benchmarks/bench_routing.py``, ``--smoke`` for a
CI-sized subset) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro import SimulatedLLM, build_dataset, get_llm_profile, get_profile
from repro.eval.metrics import precision_recall_f1
from repro.llm.pricing import api_price_per_1k
from repro.matchers.matchgpt import MatchGPTMatcher
from repro.matchers.string_sim import StringSimMatcher
from repro.reliability.clock import FakeClock
from repro.routing import SpendLedger, build_cascade_router, request_tokens

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_routing.json"

#: Benchmarks under test (full mode); smoke runs only the last (smallest).
_DATASETS = ("DBAC", "WAAM", "ROIM")
#: Dataset scale for both the evaluation and calibration splits.
_SCALE = 0.15
#: Purity bar for the calibrated confidence band.
_MIN_PURITY = 0.99
#: Acceptance bars the checked-in result must clear.
_MIN_COST_RATIO = 2.0
_MAX_F1_DROP = 0.5


def _expensive_matcher(world) -> MatchGPTMatcher:
    """GPT-4 over the deterministic simulator, fitted for zero-shot use."""
    return MatchGPTMatcher(
        SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0)
    ).fit([], get_profile("smoke"))


def _bench_dataset(code: str) -> dict:
    """Route one benchmark; return the always-escalate vs routed numbers."""
    price = api_price_per_1k("gpt-4").dollars_per_1k_input_tokens
    eval_ds, world = build_dataset(code, scale=_SCALE, seed=7)
    cal_ds, _ = build_dataset(code, scale=_SCALE, seed=11)
    labels = eval_ds.labels()
    expensive = _expensive_matcher(world)

    # Arm 1: always escalate — every pair pays the GPT-4 token price.
    full_pred = expensive.predict(eval_ds.pairs, 0)
    full_f1 = precision_recall_f1(labels, full_pred)[2]
    full_cost = sum(
        price * request_tokens(pair) / 1000.0 for pair in eval_ds.pairs
    )

    # Arm 2: the router, band-calibrated on the disjoint split.
    router = build_cascade_router(
        StringSimMatcher(),
        expensive,
        cal_ds.pairs,
        min_purity=_MIN_PURITY,
        cheap_name="string_sim",
        expensive_name="gpt-4",
        expensive_price_per_1k_tokens=price,
        serialization_seed=0,
    )
    decisions = router.route(eval_ds.pairs)
    routed_pred = np.array([d.label for d in decisions], dtype=np.int64)
    routed_f1 = precision_recall_f1(labels, routed_pred)[2]
    routed_cost = sum(d.spend_usd for d in decisions)
    band = router.backends[0]

    # Arm 3: the same trace under a starved rolling budget (a quarter of
    # what the unconstrained router spends) — requests degrade, not fail.
    clock = FakeClock()
    ledger = SpendLedger(
        budget_usd=max(routed_cost / 4.0, 1e-6), window_s=3600.0, clock=clock
    )
    budget_router = build_cascade_router(
        StringSimMatcher(),
        expensive,
        cal_ds.pairs,
        min_purity=_MIN_PURITY,
        cheap_name="string_sim",
        expensive_name="gpt-4",
        expensive_price_per_1k_tokens=price,
        ledger=ledger,
        serialization_seed=0,
        clock=clock,
    )
    budget_decisions = budget_router.route(eval_ds.pairs)
    budget_pred = np.array([d.label for d in budget_decisions], dtype=np.int64)

    return {
        "dataset": code,
        "pairs": len(eval_ds.pairs),
        "band": {
            "low": round(band.low, 4),
            "high": round(band.high, 4),
            "min_purity": _MIN_PURITY,
            "calibration_split": f"{code} scale={_SCALE} seed=11",
        },
        "always_escalate": {
            "f1": round(full_f1, 2),
            "cost_usd": round(full_cost, 4),
        },
        "routed": {
            "f1": round(routed_f1, 2),
            "cost_usd": round(routed_cost, 4),
            "escalated": sum(1 for d in decisions if d.escalated),
            "decided_cheap": sum(1 for d in decisions if not d.escalated),
        },
        "cost_ratio": round(full_cost / max(routed_cost, 1e-9), 2),
        "f1_delta": round(full_f1 - routed_f1, 2),
        "budget_run": {
            "budget_usd": round(ledger.budget_usd, 6),
            "spend_usd": round(ledger.total_spend_usd, 6),
            "budget_limited": sum(1 for d in budget_decisions if d.budget_limited),
            "ledger_denials": ledger.denials,
            "f1": round(precision_recall_f1(labels, budget_pred)[2], 2),
        },
    }


def run_bench(smoke: bool = False, out_path: Path = _OUT_PATH) -> dict:
    """Route every benchmark, assert the acceptance bars, write the doc."""
    datasets = _DATASETS[-1:] if smoke else _DATASETS
    runs = [_bench_dataset(code) for code in datasets]

    min_ratio = min(run["cost_ratio"] for run in runs)
    max_drop = max(run["f1_delta"] for run in runs)
    criteria = {
        "min_cost_ratio": min_ratio,
        "max_f1_drop": max_drop,
        "cost_ratio_target": _MIN_COST_RATIO,
        "f1_drop_target": _MAX_F1_DROP,
        "passed": min_ratio >= _MIN_COST_RATIO and max_drop <= _MAX_F1_DROP,
    }
    document = {
        "bench": "routing",
        "profile": "bench-routing" + ("-smoke" if smoke else ""),
        "ladder": "StringSim (free, banded) -> MatchGPT[gpt-4 simulated]",
        "price_per_1k_tokens": api_price_per_1k("gpt-4").dollars_per_1k_input_tokens,
        "eval_split": f"scale={_SCALE} seed=7",
        "runs": runs,
        "criteria": criteria,
        "note": (
            "cost_ratio is the always-escalate token bill over the routed "
            "bill on the identical pair trace; bands come from "
            "confidence_band on a disjoint calibration split, never the "
            "evaluation pairs.  budget_run replays the trace under a "
            "starved SpendLedger: refused escalations decide at the band "
            "midpoint and are counted budget_limited, none fail."
        ),
    }
    for run in runs:
        assert run["budget_run"]["budget_limited"] > 0, (
            f"{run['dataset']}: the starved ledger never bit — "
            "budget exhaustion was not demonstrated"
        )
    assert criteria["passed"], (
        f"acceptance not met: min cost ratio {min_ratio} "
        f"(target >= {_MIN_COST_RATIO}), max F1 drop {max_drop} "
        f"(target <= {_MAX_F1_DROP})"
    )
    out_path.write_text(json.dumps(document, indent=2) + "\n")
    for run in runs:
        print(
            f"[bench_routing] {run['dataset']}: "
            f"always-escalate F1 {run['always_escalate']['f1']} "
            f"${run['always_escalate']['cost_usd']} | routed F1 "
            f"{run['routed']['f1']} ${run['routed']['cost_usd']} | "
            f"{run['cost_ratio']}x cheaper, dF1 {run['f1_delta']:+}, "
            f"budget_limited {run['budget_run']['budget_limited']}",
            flush=True,
        )
    print(
        f"[bench_routing] min cost ratio {min_ratio}x, worst F1 drop "
        f"{max_drop} -> {out_path}",
        flush=True,
    )
    return document


def test_routing_bench_smoke(tmp_path):
    """CI smoke: criteria hold and budget exhaustion degrades, not fails."""
    document = run_bench(smoke=True, out_path=tmp_path / "BENCH_routing_smoke.json")
    assert document["criteria"]["passed"]
    for run in document["runs"]:
        assert run["cost_ratio"] >= _MIN_COST_RATIO
        assert run["f1_delta"] <= _MAX_F1_DROP
        budget = run["budget_run"]
        assert budget["budget_limited"] > 0
        assert budget["ledger_denials"] >= budget["budget_limited"]
        assert budget["spend_usd"] <= budget["budget_usd"] + 1e-9
        # Degraded decisions still answered every pair.
        assert run["pairs"] == run["routed"]["escalated"] + run["routed"]["decided_cheap"]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``--smoke`` for the CI subset, ``--out`` to redirect."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized subset")
    parser.add_argument("--out", default=str(_OUT_PATH))
    args = parser.parse_args(argv)
    run_bench(smoke=args.smoke, out_path=Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation benches: the design choices DESIGN.md calls out."""

from __future__ import annotations

from repro.study import ablations

from _common import bench_config, save_result


def test_blocking_tradeoff(benchmark):
    result = benchmark.pedantic(
        ablations.blocking_ablation,
        kwargs={"code": "DBAC", "dataset_scale": 0.1},
        rounds=1,
        iterations=1,
    )
    rendered = result.render()
    save_result("ablation_blocking", rendered)
    print("\n" + rendered)
    # Raising min_shared prunes more but never gains candidates.
    counts = [int(r["candidates"]) for r in result.rows]
    assert counts == sorted(counts, reverse=True)


def test_anymatch_data_pipeline_ablation(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        ablations.anymatch_data_ablation,
        kwargs={"target": "ABT", "base": "gpt2", "config": config},
        rounds=1,
        iterations=1,
    )
    rendered = result.render()
    save_result("ablation_anymatch", rendered)
    print("\n" + rendered)
    assert len(result.rows) == 5


def test_ditto_optimisation_ablation(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        ablations.ditto_ablation,
        kwargs={"target": "DBAC", "config": config},
        rounds=1,
        iterations=1,
    )
    rendered = result.render()
    save_result("ablation_ditto", rendered)
    print("\n" + rendered)
    assert len(result.rows) == 4

"""Shared configuration for the benchmark harness.

Every bench regenerates one paper table or figure and writes the rendered
rows to ``benchmarks/results/``.  Scale is controlled by environment
variables so the default run finishes on a single CPU core in minutes:

``REPRO_BENCH_PROFILE``
    Scale profile for the quality benches (default ``smoke``-sized custom
    profile; set to ``bench``/``default``/``full`` for longer runs).
``REPRO_BENCH_TARGETS``
    Comma-separated target datasets for Tables 3/4 (default a three-domain
    subset; set to ``all`` for all 11 — expect a long run).

The complete study (all matchers, all 11 targets) is produced by
``python -m repro.study.full_run``; see EXPERIMENTS.md for its results.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.config import PROFILES, StudyConfig, SurrogateScale
from repro.data.registry import DATASET_CODES

RESULTS_DIR = Path(__file__).parent / "results"

#: The default bench profile: big enough that trained matchers learn,
#: small enough for minutes-scale single-core runs.
_BENCH_DEFAULT = StudyConfig(
    name="bench-quick",
    seeds=(0, 1),
    test_fraction=0.25,
    train_pair_budget=400,
    epochs=3,
    dataset_scale=0.1,
    surrogate=SurrogateScale(d_model=48, n_layers=2, n_heads=4, d_ff=96, max_len=64),
)


def bench_config() -> StudyConfig:
    name = os.environ.get("REPRO_BENCH_PROFILE", "")
    if name and name in PROFILES:
        return PROFILES[name]
    return _BENCH_DEFAULT


def bench_targets() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_TARGETS", "ABT,DBAC,BEER")
    if raw.strip().lower() == "all":
        return DATASET_CODES
    return tuple(c.strip() for c in raw.split(",") if c.strip())


def save_result(name: str, text: str) -> Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path

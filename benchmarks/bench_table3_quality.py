"""Table 3 bench: the leave-one-dataset-out quality study.

Regenerates the paper's main table for the full 14-matcher roster on a
reduced target subset (see benchmarks/_common.py for the scale knobs;
``REPRO_BENCH_TARGETS=all`` runs all 11 targets).  The complete-series
run lives in results/full_study.json (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.study import table3
from repro.study.paper_targets import TABLE3_F1

from _common import bench_config, bench_targets, save_result


def test_table3_cross_dataset_f1(benchmark):
    config = bench_config()
    targets = bench_targets()

    result = benchmark.pedantic(
        table3.run,
        kwargs={"config": config, "codes": targets},
        rounds=1,
        iterations=1,
    )
    rendered = result.render()
    save_result("table3", rendered)
    print("\n" + rendered)

    means = result.quality_table()
    benchmark.extra_info["means"] = {k: round(v, 1) for k, v in means.items()}

    # Shape assertions (on the matchers whose behaviour must order
    # robustly even at the bench's reduced scale):
    assert means["MatchGPT[GPT-4]"] > means["MatchGPT[GPT-3.5-Turbo]"]
    assert means["MatchGPT[GPT-4]"] > means["StringSim"]
    assert means["MatchGPT[GPT-4o-Mini]"] > means["StringSim"]
    # Calibrated prompted models track the paper's envelope on this subset
    # (wide margin: the reduced protocol keeps only ~10 pairs of the
    # smallest benchmark, so single flips move its F1 by whole points).
    paper_subset_mean = sum(TABLE3_F1["MatchGPT[GPT-4]"][c] for c in targets) / len(targets)
    assert abs(means["MatchGPT[GPT-4]"] - paper_subset_mean) < 16.0

"""Table 5 bench: inference throughput of the open-weight models."""

from __future__ import annotations

from repro.study import table5
from repro.study.paper_targets import TABLE5_THROUGHPUT

from _common import save_result


def test_table5_throughput(benchmark):
    result = benchmark(table5.run)
    rendered = result.render()
    save_result("table5", rendered)
    print("\n" + rendered)

    simulated = result.throughput_table()
    for model, row in TABLE5_THROUGHPUT.items():
        assert abs(simulated[model] - row["tokens_per_s"]) / row["tokens_per_s"] < 0.02
    # Finding: Ditto's BERT is ~1,146x SOLAR.
    assert 1_000 < simulated["bert"] / simulated["solar"] < 1_300
    benchmark.extra_info["tokens_per_s"] = {k: round(v) for k, v in simulated.items()}

    # Measured (not simulated) surrogate inference: wall-clock and
    # tokens/s deltas of the fused fast path over the autograd path, so
    # the BENCH_*.json perf trajectory captures the inference fast path.
    measured = table5.measure_surrogate_throughput()
    benchmark.extra_info["surrogate_fastpath"] = {
        "reference_s": round(measured["reference_s"], 5),
        "fast_s": round(measured["fast_s"], 5),
        "wall_clock_delta_s": round(measured["reference_s"] - measured["fast_s"], 5),
        "reference_tokens_per_s": round(measured["reference_tokens_per_s"]),
        "fast_tokens_per_s": round(measured["fast_tokens_per_s"]),
        "tokens_per_s_delta": round(
            measured["fast_tokens_per_s"] - measured["reference_tokens_per_s"]
        ),
        "speedup": round(measured["speedup"], 3),
    }
    assert measured["speedup"] > 1.0

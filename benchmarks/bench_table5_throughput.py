"""Table 5 bench: inference throughput of the open-weight models."""

from __future__ import annotations

from repro.study import table5
from repro.study.paper_targets import TABLE5_THROUGHPUT

from _common import save_result


def test_table5_throughput(benchmark):
    result = benchmark(table5.run)
    rendered = result.render()
    save_result("table5", rendered)
    print("\n" + rendered)

    simulated = result.throughput_table()
    for model, row in TABLE5_THROUGHPUT.items():
        assert abs(simulated[model] - row["tokens_per_s"]) / row["tokens_per_s"] < 0.02
    # Finding: Ditto's BERT is ~1,146x SOLAR.
    assert 1_000 < simulated["bert"] / simulated["solar"] < 1_300
    benchmark.extra_info["tokens_per_s"] = {k: round(v) for k, v in simulated.items()}

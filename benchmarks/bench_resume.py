"""Resume-after-kill bench: journal replay vs cold restart.

Simulates the operational scenario the write-ahead cell journal exists
for: a study run killed halfway through its grid.  The bench journals
half of a fixed MatchGPT grid (the "killed run"), then measures

* **cold restart** — recomputing the whole grid from scratch, which is
  what a pre-journal runtime had to do after any crash, and
* **resume** — replaying the journaled half from disk and computing only
  the remainder (``full_run --resume``).

Both paths must produce identical science (the bench asserts score
equality before reporting wall-clock).  Alongside wall-clock, the bench
reports the *simulated dollars* the replayed half would have re-spent
against the paper's published API prices — the cost a real crash-restart
pays twice without a journal.  Results land in ``BENCH_resume.json`` at
the repository root.

Run directly (``python benchmarks/bench_resume.py``, ``--smoke`` for a
CI-sized grid) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.config import StudyConfig, SurrogateScale
from repro.llm.pricing import api_price_per_1k
from repro.runtime import grid
from repro.runtime.cache import CompletionCache, activate, deactivate
from repro.runtime.executor import SerialExecutor
from repro.runtime.journal import CellJournal

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_resume.json"

#: The benched grid: prompted models only, so the replayed work is the
#: LLM request path whose re-spend a resume avoids.
_MODELS = ("gpt-4o-mini", "gpt-3.5-turbo", "gpt-4")
_CODES = ("ABT", "DBAC", "BEER")


def _bench_config(smoke: bool) -> StudyConfig:
    return StudyConfig(
        name="bench-resume",
        seeds=(0, 1),
        test_fraction=0.2 if smoke else 1.0,
        train_pair_budget=120,
        epochs=1,
        dataset_scale=0.05 if smoke else 0.12,
        surrogate=SurrogateScale(
            d_model=16, n_layers=1, n_heads=2, d_ff=32, max_len=32, vocab_size=1024
        ),
    )


def _cells(config: StudyConfig) -> list[grid.GridCell]:
    """The benched grid: (model, target) MatchGPT cells, no-demo prompts."""
    return [
        grid.GridCell(
            kind="table4",
            matcher_name=f"MatchGPT[{model}]",
            target_code=code,
            config=config,
            codes=_CODES,
            model=model,
            strategy="none",
            use_cache=True,
        )
        for model in _MODELS
        for code in _CODES
    ]


def _science(outcomes: list) -> list:
    """The score content of cell outcomes (timings excluded)."""
    return [
        (
            o.matcher_name,
            o.target_code,
            [(s.seed, s.f1, s.precision, s.recall) for s in o.result.scores],
        )
        for o in outcomes
    ]


def _simulated_spend(cache: CompletionCache) -> float:
    """Simulated dollars the cached completions cost at published prices."""
    total = 0.0
    for response in cache._entries.values():
        price = api_price_per_1k(response.model).dollars_per_1k_input_tokens
        total += response.prompt_tokens / 1_000 * price
    return total


def _timed_run(cells: list, journal: CellJournal | None) -> tuple[float, list, float]:
    """One pass over ``cells``: (wall seconds, outcomes, simulated spend)."""
    deactivate()
    cache = activate(CompletionCache())
    started = time.perf_counter()
    try:
        outcomes = grid.run_cells(cells, SerialExecutor(), journal=journal)
    finally:
        deactivate()
    return time.perf_counter() - started, outcomes, _simulated_spend(cache)


def run_bench(smoke: bool = False, out_path: Path = _OUT_PATH) -> dict:
    """Measure cold-restart vs resume over a half-journaled grid."""
    config = _bench_config(smoke)
    # Warm the per-process dataset memo so neither path pays (or is
    # credited for) one-off dataset synthesis.
    grid.dataset_bundle(config.dataset_scale, 7)
    cells = _cells(config)
    journaled_cells = cells[::2]  # the half the "killed run" finished

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-resume-") as tmp:
        journal_path = Path(tmp) / "study.journal.jsonl"

        # The killed run: journal half the grid, then "die".
        with CellJournal(journal_path, fresh=True) as journal:
            _wall, _outcomes, journaled_spend = _timed_run(journaled_cells, journal)
        pristine = journal_path.read_bytes()

        repeats = 1 if smoke else 3
        cold_walls, resume_walls = [], []
        cold_science = resumed_science = None
        resume_spend = 0.0
        for _ in range(repeats):
            wall, outcomes, _spend = _timed_run(cells, journal=None)
            cold_walls.append(wall)
            cold_science = _science(outcomes)

            # Restore the half-written journal so every repeat resumes
            # from the same crash point.
            journal_path.write_bytes(pristine)
            with CellJournal(journal_path) as journal:
                wall, outcomes, resume_spend = _timed_run(cells, journal)
            resume_walls.append(wall)
            resumed_science = _science(outcomes)
            assert resumed_science == cold_science, (
                "resumed run diverged from cold restart"
            )

    cold = min(cold_walls)
    resumed = min(resume_walls)
    document = {
        "bench": "resume",
        "profile": config.name + ("-smoke" if smoke else ""),
        "grid": {
            "models": list(_MODELS),
            "codes": list(_CODES),
            "seeds": list(config.seeds),
            "cells": len(cells),
            "cells_journaled_before_kill": len(journaled_cells),
        },
        "cpu_count": os.cpu_count(),
        "cold_restart_wall_seconds": round(cold, 3),
        "resume_wall_seconds": round(resumed, 3),
        "resume_speedup": round(cold / resumed, 3),
        "wall_seconds_saved": round(cold - resumed, 3),
        "simulated_dollars_respent_by_cold_restart": round(journaled_spend, 6),
        "simulated_dollars_spent_on_resume": round(resume_spend, 6),
        "results_identical": True,
        "note": (
            "resume_speedup compares recomputing the full grid (what every "
            "crash cost before the journal) against replaying the journaled "
            "half and computing the remainder; the dollar figures price the "
            "replayed half's prompts at the paper's published API rates — "
            "the spend a cold restart repeats and a resume avoids."
        ),
    }
    out_path.write_text(json.dumps(document, indent=2) + "\n")
    print(
        f"[bench_resume] cold restart {cold:.2f}s vs resume {resumed:.2f}s "
        f"({document['resume_speedup']}x), "
        f"${document['simulated_dollars_respent_by_cold_restart']:.4f} of "
        "simulated spend not repeated "
        f"-> {out_path}",
        flush=True,
    )
    return document


def test_resume_speedup_smoke():
    """CI smoke: resume beats cold restart and changes no results."""
    document = run_bench(smoke=True)
    assert document["results_identical"]
    # Half the grid replays from disk, so resume should approach 2x; the
    # floor is loose because CI boxes are noisy.
    assert document["resume_speedup"] > 1.3
    assert document["simulated_dollars_respent_by_cold_restart"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized grid")
    parser.add_argument("--out", default=str(_OUT_PATH))
    args = parser.parse_args(argv)
    run_bench(smoke=args.smoke, out_path=Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

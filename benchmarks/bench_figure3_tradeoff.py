"""Figure 3 bench: deployment cost versus prediction quality.

Quality comes from the most recent full-study run when available
(results/full_study.json, produced by ``python -m repro.study.full_run``)
and falls back to the paper's Table-3 means otherwise, so the bench is
self-contained either way.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.study import figures, table6
from repro.study.paper_targets import TABLE3_F1

from _common import save_result

_FULL_STUDY = Path(__file__).resolve().parent.parent / "results" / "full_study.json"


def _quality_table() -> tuple[dict[str, float], str]:
    if _FULL_STUDY.exists():
        document = json.loads(_FULL_STUDY.read_text())
        return dict(document["table3"]["mean"]), "measured (results/full_study.json)"
    paper = {name: sum(row.values()) / len(row) for name, row in TABLE3_F1.items()}
    return paper, "paper Table-3 means (no full-study run found)"


def test_figure3_cost_vs_quality(benchmark):
    quality, source = _quality_table()

    def build():
        return figures.figure3(quality, table6.run())

    result = benchmark(build)
    rendered = f"quality source: {source}\n\n" + result.render()
    save_result("figure3", rendered)
    print("\n" + rendered)

    front = {p.matcher for p in result.front()}
    assert front, "the cost-quality Pareto front cannot be empty"
    # The cheapest matcher is always on the front.
    cheapest = min(
        (p for p in result.points if p.dollars_per_1k_tokens is not None),
        key=lambda p: p.dollars_per_1k_tokens,
    )
    assert cheapest.matcher in front
    benchmark.extra_info["front"] = sorted(front)

"""Span-overhead bench: the observability layer on the bench_runtime grid.

Measures three things, writing ``BENCH_obs.json`` at the repository
root:

* **no-op overhead** — the bench_runtime MatchGPT grid with observability
  disabled, before vs after the span wiring existed.  Disabled spans are
  a module-level singleton behind one list lookup, so this run *is* the
  reference; the bench asserts its tables match the traced run's.
* **traced overhead** — the same grid with a tracer installed (spans
  buffered in memory, flushed once at the end).  The acceptance budget
  is ≤ 5% wall-clock over the untraced run; because single-core wall
  clocks are noisy at these durations, the two modes are *interleaved*
  (untraced then traced, ``repeats`` times) so slow drift in machine
  load hits both equally, and each mode takes its minimum pass.
* **microcosts** — nanoseconds per disabled span entry/exit and per
  recorded span, measured over a tight loop, so regressions show up even
  when the grid numbers drown in noise.

Run directly (``python benchmarks/bench_obs.py``, ``--smoke`` for the
CI-sized grid) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.config import StudyConfig, SurrogateScale
from repro.obs.trace import Tracer, install_tracer, span, uninstall_tracer
from repro.reliability import RetryPolicy
from repro.reliability.wiring import activate_policy, deactivate_policy
from repro.runtime import grid
from repro.runtime.executor import make_executor
from repro.study import table3

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_obs.json"

_MODELS = ("gpt-4o-mini", "gpt-3.5-turbo", "gpt-4")
_MATCHERS = tuple(
    {"gpt-4o-mini": "MatchGPT[GPT-4o-Mini]",
     "gpt-3.5-turbo": "MatchGPT[GPT-3.5-Turbo]",
     "gpt-4": "MatchGPT[GPT-4]"}[m]
    for m in _MODELS
)
_CODES = ("ABT", "DBAC", "BEER")

#: Wall-clock overhead budget for a fully traced run (the ISSUE-7
#: acceptance bound); the CI assertion allows noise headroom on top.
OVERHEAD_BUDGET = 0.05


def _bench_config(smoke: bool) -> StudyConfig:
    """The bench_runtime grid configuration (kept identical for comparability)."""
    return StudyConfig(
        name="bench-obs",
        seeds=(0, 1),
        test_fraction=0.2 if smoke else 1.0,
        train_pair_budget=120,
        epochs=1,
        dataset_scale=0.05 if smoke else 0.12,
        surrogate=SurrogateScale(
            d_model=16, n_layers=1, n_heads=2, d_ff=32, max_len=32, vocab_size=1024
        ),
    )


def _run_once(config: StudyConfig, traced: bool, trace_path: Path) -> dict:
    """One grid pass; returns wall/flush seconds, span count, and tables.

    The timed window covers the study run itself — the part where spans
    are recorded on hot paths and the overhead budget applies.  The
    single end-of-run ``flush()`` (serialize + checksum + atomic write)
    is timed separately and reported as ``flush_seconds``: it is a
    fixed per-run export cost proportional to span count, not a per-span
    tax on the workload.
    """
    tracer = install_tracer(Tracer(trace_path)) if traced else None
    executor = make_executor(workers=1, backend="serial")
    spans_recorded = 0
    flush_seconds = 0.0
    try:
        started = time.perf_counter()
        t3 = table3.run(config, _MATCHERS, codes=_CODES, executor=executor)
        wall = time.perf_counter() - started
    finally:
        executor.close()
        if tracer is not None:
            spans_recorded = tracer.spans_recorded
            flush_started = time.perf_counter()
            tracer.flush()
            flush_seconds = time.perf_counter() - flush_started
            uninstall_tracer()
    return {
        "wall": wall,
        "flush": flush_seconds,
        "spans": spans_recorded,
        "tables": t3.per_dataset_table(),
    }


def _run_modes(config: StudyConfig, trace_dir: Path, repeats: int) -> tuple[dict, dict]:
    """Interleaved untraced/traced passes; returns one summary per mode."""
    passes: dict[bool, list[dict]] = {False: [], True: []}
    for repeat in range(repeats):
        for traced in (False, True):
            result = _run_once(
                config, traced, trace_dir / f"bench_obs.{repeat}.trace.jsonl"
            )
            previous = passes[traced]
            assert not previous or result["tables"] == previous[0]["tables"], (
                f"traced={traced}: results drifted across repeats"
            )
            previous.append(result)

    def summarize(traced: bool) -> dict:
        runs = passes[traced]
        return {
            "traced": traced,
            "wall_seconds": round(min(r["wall"] for r in runs), 3),
            "wall_seconds_all": [round(r["wall"], 3) for r in runs],
            "flush_seconds": round(min(r["flush"] for r in runs), 3),
            "spans_recorded": runs[-1]["spans"],
            "tables": runs[0]["tables"],
        }

    return summarize(False), summarize(True)


def _microcosts() -> dict:
    """Nanoseconds per span in disabled and enabled mode (tight loops)."""
    n = 200_000

    def per_call_ns(loops: int) -> float:
        started = time.perf_counter()
        for _ in range(loops):
            with span("bench.micro", i=1):
                pass
        return 1e9 * (time.perf_counter() - started) / loops

    disabled_ns = min(per_call_ns(n) for _ in range(3))
    tracer = install_tracer(Tracer(Path(os.devnull)))
    try:
        enabled_ns = min(per_call_ns(n // 10) for _ in range(3))
    finally:
        uninstall_tracer()
    return {
        "noop_span_ns": round(disabled_ns, 1),
        "recorded_span_ns": round(enabled_ns, 1),
        "loop_iterations": n,
    }


def run_bench(smoke: bool = False, out_path: Path = _OUT_PATH) -> dict:
    """Run untraced-vs-traced passes + microbenchmarks; write the document."""
    config = _bench_config(smoke)
    grid.dataset_bundle(config.dataset_scale, 7)

    repeats = 2 if smoke else 4
    # The retry layer is active in BOTH modes so the workload carries a
    # span site on every single LLM request (the hottest instrumented
    # path) — without it, only the handful of per-cell spans would be
    # exercised and the measurement would say nothing.  Traces land in a
    # temp dir: they are multi-megabyte transients, not tracked results.
    activate_policy(RetryPolicy(max_attempts=2))
    try:
        with tempfile.TemporaryDirectory(prefix="bench_obs_") as scratch:
            untraced, traced = _run_modes(config, Path(scratch), repeats)
    finally:
        deactivate_policy()
    assert traced["tables"] == untraced["tables"], (
        "tracing changed study results"
    )
    overhead = traced["wall_seconds"] / untraced["wall_seconds"] - 1.0

    document = {
        "bench": "obs",
        "profile": config.name + ("-smoke" if smoke else ""),
        "grid": {
            "matchers": list(_MATCHERS),
            "codes": list(_CODES),
            "seeds": list(config.seeds),
        },
        "cpu_count": os.cpu_count(),
        "runs": [
            {k: v for k, v in r.items() if k != "tables"}
            for r in (untraced, traced)
        ],
        "results_identical_traced_vs_untraced": True,
        "span_overhead_fraction": round(overhead, 4),
        "span_overhead_budget": OVERHEAD_BUDGET,
        "within_budget": overhead <= OVERHEAD_BUDGET,
        "microcosts": _microcosts(),
        "note": (
            "span_overhead_fraction compares min-of-repeats wall-clock of a "
            "fully traced bench_runtime-style grid (serial, no cache) "
            "against the same grid with observability disabled, with the "
            "two modes interleaved per repeat so machine-load drift hits "
            "both equally; the one "
            "end-of-run flush (serialize + checksum + atomic write) is "
            "reported separately as flush_seconds since it is a fixed "
            "export cost, not a per-span tax on the workload.  The "
            "microcosts section isolates the per-span price so grid-level "
            "noise cannot hide a hot-path regression."
        ),
    }
    out_path.write_text(json.dumps(document, indent=2) + "\n")
    print(
        f"[bench_obs] untraced {untraced['wall_seconds']:.2f}s, traced "
        f"{traced['wall_seconds']:.2f}s ({traced['spans_recorded']} spans): "
        f"overhead {100 * overhead:.1f}% (budget {100 * OVERHEAD_BUDGET:.0f}%), "
        f"noop span {document['microcosts']['noop_span_ns']:.0f}ns -> {out_path}",
        flush=True,
    )
    return document


def test_obs_overhead_smoke():
    """CI smoke: tracing changes no results and stays near the budget.

    Wall-clock on a shared single core is noisy at smoke scale, so the
    hard CI bound is looser than the headline budget; the committed
    ``BENCH_obs.json`` documents the real measurement.
    """
    document = run_bench(smoke=True)
    assert document["results_identical_traced_vs_untraced"]
    assert document["span_overhead_fraction"] <= 3 * OVERHEAD_BUDGET
    assert document["microcosts"]["noop_span_ns"] < 5_000


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the bench and write the JSON document."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized grid")
    parser.add_argument("--out", default=str(_OUT_PATH))
    args = parser.parse_args(argv)
    run_bench(smoke=args.smoke, out_path=Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

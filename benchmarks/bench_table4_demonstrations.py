"""Table 4 bench: demonstration strategies for the prompted GPT models."""

from __future__ import annotations

from dataclasses import replace

from repro.llm.prompts import DemonstrationStrategy
from repro.study import table4

from _common import bench_config, bench_targets, save_result


def test_table4_demonstration_strategies(benchmark):
    # Simulated-only experiment: full test sets cost little and keep the
    # demonstration effects out of small-sample noise.
    config = replace(bench_config(), test_fraction=1.0, dataset_scale=0.2)
    targets = bench_targets()

    result = benchmark.pedantic(
        table4.run,
        kwargs={"config": config, "codes": targets},
        rounds=1,
        iterations=1,
    )
    rendered = result.render()
    save_result("table4", rendered)
    print("\n" + rendered)

    # The paper's demonstration findings, as shape checks:
    gpt35 = result.mean_by_strategy("gpt-3.5-turbo")
    gpt4 = result.mean_by_strategy("gpt-4")
    none, hand, random_ = (s.value for s in (
        DemonstrationStrategy.NONE, DemonstrationStrategy.HAND_PICKED,
        DemonstrationStrategy.RANDOM,
    ))
    assert gpt35[hand] < gpt35[none], "OOD hand-picked demos hurt GPT-3.5"
    assert gpt35[random_] > gpt35[hand], "random demos beat hand-picked"
    assert gpt4[random_] > gpt4[none] - 2.0, "GPT-4 is at worst mildly affected"
    benchmark.extra_info["gpt35"] = {k: round(v, 1) for k, v in gpt35.items()}
    benchmark.extra_info["gpt4"] = {k: round(v, 1) for k, v in gpt4.items()}

"""Figure 4 bench: model size versus prediction quality."""

from __future__ import annotations

import json
from pathlib import Path

from repro.study import figures
from repro.study.paper_targets import TABLE3_F1

from _common import save_result

_FULL_STUDY = Path(__file__).resolve().parent.parent / "results" / "full_study.json"


def _quality_table() -> tuple[dict[str, float], str]:
    if _FULL_STUDY.exists():
        document = json.loads(_FULL_STUDY.read_text())
        return dict(document["table3"]["mean"]), "measured (results/full_study.json)"
    paper = {name: sum(row.values()) / len(row) for name, row in TABLE3_F1.items()}
    return paper, "paper Table-3 means (no full-study run found)"


def test_figure4_size_vs_quality(benchmark):
    quality, source = _quality_table()
    result = benchmark(figures.figure4, quality)
    rendered = f"quality source: {source}\n\n" + result.render()
    save_result("figure4", rendered)
    print("\n" + rendered)

    points = {p.matcher: p for p in result.points}
    # Paper-envelope shape: on the paper's numbers, the 1.3B fine-tuned
    # model matches the 1.76T prompted model.
    if "paper" in source:
        assert points["AnyMatch[LLaMA3.2]"].mean_f1 >= points["MatchGPT[GPT-4]"].mean_f1 - 0.5
    # And size spans six orders of magnitude either way.
    sizes = [p.params_millions for p in result.points if p.params_millions > 0]
    assert max(sizes) / min(sizes) > 10_000

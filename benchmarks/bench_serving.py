"""Serving bench: micro-batched throughput vs per-request dispatch.

A multi-threaded closed-loop load generator (fixed client count, fixed
seeded request trace) drives one :class:`repro.serving.MatchService`
over a fitted AnyMatch surrogate at micro-batch sizes 1, 8 and 32.
``max_batch_size=1`` *is* per-request dispatch — every queued request
pays the full fixed cost of one ``Matcher.predict`` call — so the
batch-32 run's requests/s over the batch-1 run's is exactly the
amortisation the scheduler buys.

Every configuration must answer the identical trace with identical
labels (the workload is deterministic even though wall-clock is not);
the bench asserts that before reporting throughput and p50/p95 latency.
Results are written to ``BENCH_serving.json`` at the repository root.

Run directly (``python benchmarks/bench_serving.py``, ``--smoke`` for a
CI-sized load) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.config import StudyConfig, SurrogateScale
from repro.data import build_dataset
from repro.matchers.anymatch import AnyMatchMatcher
from repro.serving.service import MatchService

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_serving.json"

#: The micro-batch sizes under test; 1 is the per-request baseline.
_BATCH_SIZES = (1, 8, 32)


def _bench_config() -> StudyConfig:
    return StudyConfig(
        name="bench-serving",
        seeds=(0,),
        test_fraction=0.25,
        train_pair_budget=200,
        epochs=2,
        dataset_scale=0.05,
        surrogate=SurrogateScale(
            d_model=32, n_layers=1, n_heads=2, d_ff=64, max_len=48, vocab_size=2048
        ),
    )


def _fit_matcher(config: StudyConfig) -> AnyMatchMatcher:
    """One fitted surrogate shared by every load configuration."""
    transfer = [build_dataset(code, config.dataset_scale, seed=7)[0]
                for code in ("ABT", "DBAC", "BEER")]
    return AnyMatchMatcher("gpt2").fit(transfer, config, seed=0)


def _request_trace(n_requests: int) -> list:
    """A fixed, seeded request trace (pairs cycled from one benchmark)."""
    dataset, _world = build_dataset("ABT", 0.05, seed=7)
    pairs = dataset.pairs
    return [pairs[i % len(pairs)] for i in range(n_requests)]


def _percentile(ordered: list[float], q: float) -> float:
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _run_load(
    matcher: AnyMatchMatcher,
    trace: list,
    batch_size: int,
    n_clients: int,
) -> dict:
    """One closed-loop run: ``n_clients`` threads drain the trace."""
    service = MatchService(
        matcher,
        max_batch_size=batch_size,
        max_wait_ms=2.0,
        max_queue=len(trace) + n_clients,
    )
    per_client = len(trace) // n_clients
    latencies: list[float] = []
    labels: dict[int, int] = {}
    lock = threading.Lock()
    failures: list[str] = []

    def client(client_id: int) -> None:
        lo = client_id * per_client
        for i in range(lo, lo + per_client):
            try:
                response = service.match_pairs([trace[i]], timeout_s=60.0)[0]
            except Exception as error:  # pragma: no cover - bench diagnostics
                with lock:
                    failures.append(f"request {i}: {error}")
                return
            with lock:
                latencies.append(response.latency_s)
                labels[i] = response.label

    threads = [
        threading.Thread(target=client, args=(c,), daemon=True)
        for c in range(n_clients)
    ]
    with service:
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
    assert not failures, failures[:3]

    ordered = sorted(latencies)
    scheduler = service.metrics()["scheduler"]
    return {
        "batch_size": batch_size,
        "clients": n_clients,
        "requests": len(latencies),
        "wall_seconds": round(wall, 3),
        "requests_per_s": round(len(latencies) / wall, 1),
        "latency_p50_ms": round(1000 * _percentile(ordered, 0.50), 3),
        "latency_p95_ms": round(1000 * _percentile(ordered, 0.95), 3),
        "mean_batch_occupancy": scheduler["mean_occupancy"],
        "batches": scheduler["batches"],
        "labels": labels,
    }


def run_bench(smoke: bool = False, out_path: Path = _OUT_PATH) -> dict:
    config = _bench_config()
    matcher = _fit_matcher(config)
    # Closed-loop occupancy is capped by the client count, so the client
    # pool must exceed the largest batch size for batch-32 coalescing to
    # fill without stalling on the max_wait timer.
    n_clients = 8 if smoke else 64
    trace = _request_trace(128 if smoke else 1024)

    runs = [_run_load(matcher, trace, size, n_clients) for size in _BATCH_SIZES]

    reference_labels = runs[0].pop("labels")
    for run in runs[1:]:
        assert run.pop("labels") == reference_labels, (
            f"batch_size={run['batch_size']} changed response labels"
        )

    def rps(batch_size: int) -> float:
        return next(r["requests_per_s"] for r in runs if r["batch_size"] == batch_size)

    document = {
        "bench": "serving",
        "profile": config.name + ("-smoke" if smoke else ""),
        "matcher": matcher.display_name,
        "workload": {
            "requests": len(trace),
            "clients": n_clients,
            "trace": "ABT scale=0.05 seed=7 pairs, cycled",
            "mode": "closed-loop, one in-flight request per client",
        },
        "runs": runs,
        "labels_identical_across_batch_sizes": True,
        "batched_speedup_at_8": round(rps(8) / rps(1), 3),
        "batched_speedup_at_32": round(rps(32) / rps(1), 3),
        "note": (
            "max_batch_size=1 is per-request dispatch (one predict() call "
            "per request); the speedups are the fixed per-call overhead the "
            "micro-batcher amortises across coalesced requests."
        ),
    }
    out_path.write_text(json.dumps(document, indent=2) + "\n")
    for run in runs:
        print(
            f"[bench_serving] batch={run['batch_size']:>2}: "
            f"{run['requests_per_s']:>7.1f} req/s, "
            f"p50 {run['latency_p50_ms']:.2f}ms, p95 {run['latency_p95_ms']:.2f}ms, "
            f"occupancy {run['mean_batch_occupancy']:.1f}",
            flush=True,
        )
    print(
        f"[bench_serving] micro-batching speedup at 32: "
        f"{document['batched_speedup_at_32']}x -> {out_path}",
        flush=True,
    )
    return document


def test_serving_bench_smoke(tmp_path):
    """CI smoke: identical labels per batch size, sane latency accounting."""
    document = run_bench(smoke=True, out_path=tmp_path / "BENCH_serving_smoke.json")
    assert document["labels_identical_across_batch_sizes"]
    for run in document["runs"]:
        assert run["requests"] == document["workload"]["requests"]
        assert run["latency_p95_ms"] >= run["latency_p50_ms"] >= 0
    # Coalescing visibly happened at batch 32 under concurrent clients.
    batch32 = next(r for r in document["runs"] if r["batch_size"] == 32)
    assert batch32["mean_batch_occupancy"] > 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized load")
    parser.add_argument("--out", default=str(_OUT_PATH))
    args = parser.parse_args(argv)
    run_bench(smoke=args.smoke, out_path=Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fault-tolerant matching: inject API failures, retry, get identical results.

The hosted APIs behind the paper throttle, drop connections, and
occasionally return garbage. This example wraps the simulated LLM in a
deterministic :class:`FaultInjector` (20% transient errors, 5% rate
limits, 5% malformed completions) and a :class:`RetryingClient` with the
default backoff policy, then shows that the matcher's predictions are
*byte-identical* to a fault-free run — the retries absorb every fault.

Run:  python examples/fault_tolerant_study.py
"""

from __future__ import annotations

from repro import (
    MatchGPTMatcher,
    SimulatedLLM,
    build_dataset,
    get_llm_profile,
    get_profile,
    precision_recall_f1,
)
from repro.errors import RetryExhaustedError
from repro.reliability import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    RetryingClient,
    validate_yes_no,
)
from repro.reliability import counters


def main() -> None:
    dataset, world = build_dataset("BEER", scale=0.3, seed=7)
    labels = dataset.labels()
    profile = get_profile("smoke")

    # 1. The fault-free reference run.
    clean = SimulatedLLM(get_llm_profile("gpt-4o-mini"), world, seed=0)
    matcher = MatchGPTMatcher(clean).fit([], profile)
    reference = matcher.predict(dataset.pairs, serialization_seed=0)
    p, r, f1 = precision_recall_f1(labels, reference)
    print(f"clean run      P {p:5.1f}  R {r:5.1f}  F1 {f1:5.1f}")

    # 2. The same run through a hostile network: 30% of requests fault.
    #    The plan is a *bounded adversary* (max_consecutive=3 < the
    #    policy's 4 attempts), so retries always converge, and every
    #    fault draw depends only on (seed, prompt, attempt) — never on
    #    call order.
    plan = FaultPlan(transient_rate=0.2, rate_limit_rate=0.05,
                     malformed_rate=0.05, seed=7)
    policy = RetryPolicy()  # 4 attempts, exp. backoff, seeded jitter
    backend = SimulatedLLM(get_llm_profile("gpt-4o-mini"), world, seed=0)
    hardened = RetryingClient(
        FaultInjector(backend, plan), policy, validate=validate_yes_no
    )

    before = counters.snapshot()
    matcher = MatchGPTMatcher(hardened).fit([], profile)
    faulted = matcher.predict(dataset.pairs, serialization_seed=0)
    delta = counters.delta_since(before)

    p, r, f1 = precision_recall_f1(labels, faulted)
    print(f"faulted run    P {p:5.1f}  R {r:5.1f}  F1 {f1:5.1f}")
    print(f"  faults injected: {delta['faults_injected']:.0f} "
          f"(transient {delta['transient_faults']:.0f}, "
          f"rate-limit {delta['rate_limit_faults']:.0f}, "
          f"malformed {delta['malformed_completions']:.0f})")
    print(f"  request retries: {delta['request_retries']:.0f}, "
          f"backoff slept {delta['retry_sleep_seconds']:.2f}s")

    assert list(faulted) == list(reference), "retries must not change any prediction"
    print("predictions are byte-identical to the clean run")

    # 3. Without retries the same faults are fatal: the first injected
    #    error (or garbled completion) surfaces immediately.
    fragile = RetryingClient(
        FaultInjector(SimulatedLLM(get_llm_profile("gpt-4o-mini"), world, seed=0),
                      plan),
        policy.without_retries(), validate=validate_yes_no,
    )
    try:
        MatchGPTMatcher(fragile).fit([], profile).predict(
            dataset.pairs, serialization_seed=0
        )
    except RetryExhaustedError as error:
        print(f"without retries: {type(error).__name__} "
              f"(caused by {type(error.__cause__).__name__})")


if __name__ == "__main__":
    main()

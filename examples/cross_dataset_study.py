"""A miniature leave-one-dataset-out study (the Table-3 protocol).

Fine-tunes Ditto and AnyMatch on ten transfer benchmarks, evaluates on
the held-out target, and compares them with two prompted LLMs — the full
cross-dataset protocol of Section 2.2 at example scale.

Run:  python examples/cross_dataset_study.py          (~3-4 minutes on CPU)
"""

from __future__ import annotations

from repro import StudyConfig, SurrogateScale
from repro.study import table3


def main() -> None:
    config = StudyConfig(
        name="example",
        seeds=(0, 1),
        test_fraction=0.4,
        train_pair_budget=600,
        epochs=4,
        dataset_scale=0.12,
        surrogate=SurrogateScale(d_model=48, n_layers=2, n_heads=4, d_ff=96, max_len=64),
    )
    result = table3.run(
        config,
        matcher_names=(
            "StringSim",
            "Ditto",
            "AnyMatch[GPT-2]",
            "MatchGPT[GPT-3.5-Turbo]",
            "MatchGPT[GPT-4]",
        ),
        codes=("ABT", "DBAC", "BEER"),  # three targets keep the example fast
    )
    print(result.render())
    print()
    print("Macro means:", {k: round(v, 1) for k, v in result.quality_table().items()})
    print()
    print("Note: the trained matchers here are from-scratch surrogates at")
    print("example scale; see EXPERIMENTS.md for the scale discussion.")


if __name__ == "__main__":
    main()

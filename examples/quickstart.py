"""Quickstart: build a benchmark, match it three ways, score the results.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    StringSimMatcher,
    ZeroERMatcher,
    SimulatedLLM,
    MatchGPTMatcher,
    build_dataset,
    get_llm_profile,
    get_profile,
    get_spec,
    precision_recall_f1,
)


def main() -> None:
    # 1. Synthesise the Abt-Buy benchmark at 20% of its Table-1 size.
    #    (At scale=1.0 you get the full 1,028 / 8,547 pair counts.)
    dataset, world = build_dataset("ABT", scale=0.2, seed=7)
    print(f"dataset {dataset.name}: {dataset.n_positives} matches, "
          f"{dataset.n_negatives} non-matches, {dataset.n_attributes} attributes")

    labels = dataset.labels()

    # 2. The trivial baseline: whole-string similarity with difflib.
    string_sim = StringSimMatcher()
    predictions = string_sim.predict(dataset.pairs, serialization_seed=0)
    p, r, f1 = precision_recall_f1(labels, predictions)
    print(f"StringSim           P {p:5.1f}  R {r:5.1f}  F1 {f1:5.1f}")

    # 3. ZeroER: unsupervised Gaussian-mixture matching over typed
    #    similarity features (batch-only, needs the column kinds).
    zeroer = ZeroERMatcher(get_spec("ABT").attribute_kinds)
    predictions = zeroer.predict(dataset.pairs)
    p, r, f1 = precision_recall_f1(labels, predictions)
    print(f"ZeroER              P {p:5.1f}  R {r:5.1f}  F1 {f1:5.1f}")

    # 4. MatchGPT over the simulated GPT-4 service: prompts are built,
    #    sent, and parsed exactly as against the real API.
    client = SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0)
    matchgpt = MatchGPTMatcher(client).fit([], get_profile("smoke"))
    predictions = matchgpt.predict(dataset.pairs, serialization_seed=0)
    p, r, f1 = precision_recall_f1(labels, predictions)
    print(f"MatchGPT[GPT-4]     P {p:5.1f}  R {r:5.1f}  F1 {f1:5.1f}")


if __name__ == "__main__":
    main()

"""Do in-context demonstrations help cross-dataset EM? (Table 4.)

Prompts the simulated GPT-3.5-Turbo and GPT-4 services without
demonstrations, with three hand-picked transfer examples, and with three
random transfer examples — reproducing the counterintuitive Table-4
result that out-of-distribution demonstrations *hurt* weaker models.

Run:  python examples/demonstration_strategies.py     (~1 minute)
"""

from __future__ import annotations

from repro import StudyConfig
from repro.study import table4


def main() -> None:
    config = StudyConfig(
        name="example", seeds=(0, 1), test_fraction=1.0, train_pair_budget=100,
        epochs=1, dataset_scale=0.2,
    )
    result = table4.run(
        config,
        models=("gpt-3.5-turbo", "gpt-4"),
        codes=("ABT", "DBAC", "FOZA", "BEER"),
    )
    print(result.render())
    print()
    for model in ("gpt-3.5-turbo", "gpt-4"):
        means = result.mean_by_strategy(model)
        print(f"{model}: " + "  ".join(f"{k}={v:.1f}" for k, v in means.items()))
    print()
    print("Expected shape: demonstrations degrade GPT-3.5-Turbo (out-of-")
    print("distribution context confuses it) while GPT-4 is mildly helped.")


if __name__ == "__main__":
    main()

"""Match your own records: an end-to-end pipeline on custom data.

The study's matchers are library components that work on any aligned
records, not just the 11 benchmarks.  This example builds two tiny
product catalogues from raw strings, blocks the cross product down to
candidate pairs, and matches the candidates with a fine-tuned matcher
trained on benchmark transfer data — the AWS-Glue-style automation
scenario from Section 2.1.

Run:  python examples/custom_dataset.py               (~1 minute)
"""

from __future__ import annotations

from repro import (
    DittoMatcher,
    Record,
    RecordPair,
    StudyConfig,
    SurrogateScale,
    TokenBlocker,
    build_dataset,
)

SHOP_A = [
    ("a1", ("logitech mx master 3s wireless mouse", "graphite", "99.99")),
    ("a2", ("dell ultrasharp u2723qe 27 inch monitor", "4k usb-c hub", "619.99")),
    ("a3", ("sony wh-1000xm5 noise canceling headphones", "black", "399.00")),
    ("a4", ("anker 737 power bank", "24000mah 140w", "149.95")),
]

SHOP_B = [
    ("b1", ("mx master 3s mouse by logitech", "wireless, graphite colour", "$94")),
    ("b2", ("sony wh1000xm5 wireless headphones", "industry leading noise canceling", "$379")),
    ("b3", ("samsung galaxy buds 2 pro", "bora purple", "$229")),
    ("b4", ("dell 27 4k monitor u2723qe", "ultrasharp with usb c hub", "$599")),
]


def main() -> None:
    left = [Record(rid, values, entity_id=f"A:{rid}", source="shop-a") for rid, values in SHOP_A]
    right = [Record(rid, values, entity_id=f"B:{rid}", source="shop-b") for rid, values in SHOP_B]

    # 1. Blocking prunes the 4x4 cross product to plausible candidates.
    blocker = TokenBlocker(min_shared=2)
    blocked = blocker.block(left, right)
    print(f"blocking: {len(blocked.candidates)} candidates "
          f"(reduction {blocked.reduction_ratio:.0%})")

    candidates = [
        RecordPair(f"{a.record_id}-{b.record_id}", a, b, label=0)
        for a, b in blocked.candidates
    ]

    # 2. Fine-tune a matcher on benchmark transfer data (cross-dataset:
    #    it never sees these shops).
    config = StudyConfig(
        name="example", seeds=(0,), train_pair_budget=500, epochs=4,
        dataset_scale=0.1,
        surrogate=SurrogateScale(d_model=48, n_layers=2, n_heads=4, d_ff=96, max_len=64),
    )
    transfer = [build_dataset(code, scale=0.1, seed=7)[0]
                for code in ("ABT", "WDC", "WAAM", "AMGO")]
    matcher = DittoMatcher().fit(transfer, config, seed=0)

    # 3. Match the candidates.
    scores = matcher.match_scores(candidates)
    print("\ncandidate scores:")
    for pair, score in sorted(zip(candidates, scores), key=lambda t: -t[1]):
        verdict = "MATCH   " if score > 0.5 else "distinct"
        print(f"  {verdict} p={score:.2f}  {pair.left.values[0][:42]:<42} ~ "
              f"{pair.right.values[0][:42]}")


if __name__ == "__main__":
    main()

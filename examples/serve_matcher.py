"""Serve a matcher online: export, reload, index, batch, query over HTTP.

The full serving pipeline in one script:

1. fit the deployment matcher and export it as an artifact directory,
2. reload it (predictions are byte-identical to the exported instance),
3. build an incremental candidate index over a serving corpus,
4. stand up the micro-batched ``MatchService`` plus its HTTP front-end,
5. answer pair-match and candidate-lookup requests both in-process and
   over ``POST /match``.

Run:  python examples/serve_matcher.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

from repro.config import get_profile
from repro.data import build_dataset
from repro.serving import (
    CandidateIndex,
    MatchService,
    export_deployable,
    load_artifact,
)
from repro.serving.http import MatchHTTPServer


def main() -> None:
    # 1. Export: fit AnyMatch[GPT-2] on every benchmark (the serving
    #    scenario has no held-out target) and write manifest + weights.
    artifact_dir = Path(tempfile.mkdtemp(prefix="repro-artifact-")) / "matcher"
    export_deployable(get_profile("smoke"), artifact_dir)
    print(f"exported artifact -> {artifact_dir}")

    # 2. Reload. The manifest records the architecture and vocabulary;
    #    the checkpoint restores the exact fitted weights.
    matcher = load_artifact(artifact_dir)
    print(f"reloaded {matcher.display_name}")

    # 3. Index a serving corpus incrementally (here: one benchmark's
    #    right-hand relation). Blocking semantics match the offline
    #    TokenBlocker exactly.
    dataset, _world = build_dataset("ABT", scale=0.2, seed=7)
    corpus = [pair.right for pair in dataset.pairs]
    index = CandidateIndex(min_shared=2)
    index.add_records(corpus)
    print(f"indexed {len(index)} corpus records")

    # 4. Compose the service: index -> micro-batcher -> matcher, with
    #    bounded-queue admission control and a 2 ms coalescing window.
    service = MatchService(matcher, index=index, max_batch_size=32, max_wait_ms=2.0)

    # In-process requests work without starting the dispatcher thread —
    # submissions are processed inline in deterministic FIFO batches.
    probe = dataset.pairs[0].left
    response = service.match_pair(probe, dataset.pairs[0].right)
    print(f"match_pair: label={response.label} "
          f"latency={1000 * response.latency_s:.2f}ms")
    for match in service.lookup(probe, top_k=5):
        print(f"lookup hit: {match.record.record_id} "
              f"(shared tokens: {match.shared_tokens})")

    # 5. The same service over HTTP (port 0 = pick a free port).
    with MatchHTTPServer(service) as server:
        payload = json.dumps(
            {"left": list(probe.values), "right": list(dataset.pairs[0].right.values)}
        ).encode()
        request = urllib.request.Request(
            server.url + "/match", data=payload, method="POST"
        )
        with urllib.request.urlopen(request) as http_response:
            print(f"POST /match -> {json.loads(http_response.read())}")
        with urllib.request.urlopen(server.url + "/healthz") as http_response:
            print(f"GET /healthz -> {json.loads(http_response.read())['status']}")
        with urllib.request.urlopen(server.url + "/metrics") as http_response:
            counters = json.loads(http_response.read())["counters"]
            print(f"GET /metrics -> {counters}")


if __name__ == "__main__":
    main()

"""Hybrid cascade: ZeroER handles the easy pairs, GPT-4 the hard ones.

Finding 1 suggests combining efficient parameter-free matchers with
stronger techniques.  The cascade labels pairs the cheap scorer is
confident about and escalates only the uncertain band — cutting the
LLM token bill by the non-escalated fraction while keeping most of the
quality.

Run:  python examples/hybrid_cascade.py              (~1 minute)
"""

from __future__ import annotations

from repro import (
    SimulatedLLM,
    UsageMeter,
    build_dataset,
    get_llm_profile,
    get_profile,
    precision_recall_f1,
)
from repro.matchers import CascadeMatcher, MatchGPTMatcher, StringSimMatcher


def main() -> None:
    dataset, world = build_dataset("ABT", scale=0.15, seed=7)
    labels = dataset.labels()
    config = get_profile("smoke")

    # Full GPT-4 pass: every pair costs tokens.
    meter_full = UsageMeter(price_per_1k_tokens=0.015)
    full = MatchGPTMatcher(
        SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0), meter=meter_full
    ).fit([], config)
    _, _, full_f1 = precision_recall_f1(labels, full.predict(dataset.pairs, 0))

    # Cascade: cheap similarity scorer first, GPT-4 only when uncertain.
    meter_cascade = UsageMeter(price_per_1k_tokens=0.015)
    expensive = MatchGPTMatcher(
        SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0), meter=meter_cascade
    )
    # StringSim similarities are smooth, so a confidence band exists:
    # ratio <= 0.25 is a sure non-match, >= 0.65 a sure match.
    cascade = CascadeMatcher(
        StringSimMatcher(), expensive, low=0.25, high=0.65,
    ).fit([], config)
    _, _, cascade_f1 = precision_recall_f1(labels, cascade.predict(dataset.pairs, 0))

    print(f"full GPT-4 pass : F1 {full_f1:5.1f}  cost ${meter_full.dollars_spent:.4f}")
    print(f"cascade         : F1 {cascade_f1:5.1f}  cost ${meter_cascade.dollars_spent:.4f}")
    print(f"escalated       : {cascade.last_escalation_rate:.0%} of pairs")
    saving = 1 - meter_cascade.dollars_spent / meter_full.dollars_spent
    print(f"token-cost saving: {saving:.0%}")


if __name__ == "__main__":
    main()

"""Hybrid cascade: the cheap scorer handles easy pairs, GPT-4 the hard ones.

Finding 1 suggests combining efficient parameter-free matchers with
stronger techniques.  The cascade labels pairs the cheap scorer is
confident about and escalates only the uncertain band — cutting the
LLM token bill by the non-escalated fraction while keeping most of the
quality.

The same idea serves online: ``repro.routing.build_cascade_router``
calibrates the band from a labelled split (instead of hand-picking it)
and adds per-request and rolling token-dollar budgets, and
``MatchService(matcher, router=...)`` dispatches live traffic through
it.  The third arm below runs that serve-time router on the identical
pairs; the full walkthrough is in ``docs/ROUTING.md``.

Run:  python examples/hybrid_cascade.py              (~1 minute)
"""

from __future__ import annotations

from repro import (
    SimulatedLLM,
    UsageMeter,
    build_dataset,
    get_llm_profile,
    get_profile,
    precision_recall_f1,
)
from repro.matchers import CascadeMatcher, MatchGPTMatcher, StringSimMatcher
from repro.routing import build_cascade_router


def main() -> None:
    dataset, world = build_dataset("DBAC", scale=0.15, seed=7)
    labels = dataset.labels()
    config = get_profile("smoke")

    # Full GPT-4 pass: every pair costs tokens.
    meter_full = UsageMeter(price_per_1k_tokens=0.015)
    full = MatchGPTMatcher(
        SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0), meter=meter_full
    ).fit([], config)
    _, _, full_f1 = precision_recall_f1(labels, full.predict(dataset.pairs, 0))

    # Cascade: cheap similarity scorer first, GPT-4 only when uncertain.
    meter_cascade = UsageMeter(price_per_1k_tokens=0.015)
    expensive = MatchGPTMatcher(
        SimulatedLLM(get_llm_profile("gpt-4"), world, seed=0), meter=meter_cascade
    )
    # On the clean bibliographic pairs StringSim similarities separate
    # well, so a hand-picked confidence band works: ratio <= 0.63 is a
    # sure non-match, >= 0.86 a sure match.
    cascade = CascadeMatcher(
        StringSimMatcher(), expensive, low=0.63, high=0.86,
    ).fit([], config)
    _, _, cascade_f1 = precision_recall_f1(labels, cascade.predict(dataset.pairs, 0))
    # Snapshot before the router arm below reuses the same metered matcher.
    cascade_cost = meter_cascade.dollars_spent

    # Serve-time router: the same ladder, but the band is *calibrated*
    # on a disjoint labelled split (no hand-picking) and every
    # escalation is priced in dollars.
    cal_ds, _ = build_dataset("DBAC", scale=0.15, seed=11)
    router = build_cascade_router(
        StringSimMatcher(),
        expensive,
        cal_ds.pairs,
        min_purity=0.99,
        expensive_price_per_1k_tokens=0.015,
        serialization_seed=0,
    )
    decisions = router.route(dataset.pairs)
    _, _, routed_f1 = precision_recall_f1(labels, [d.label for d in decisions])
    routed_cost = sum(d.spend_usd for d in decisions)
    band = router.backends[0]

    print(f"full GPT-4 pass : F1 {full_f1:5.1f}  cost ${meter_full.dollars_spent:.4f}")
    print(f"cascade         : F1 {cascade_f1:5.1f}  cost ${cascade_cost:.4f}")
    print(f"escalated       : {cascade.last_escalation_rate:.0%} of pairs")
    saving = 1 - cascade_cost / meter_full.dollars_spent
    print(f"token-cost saving: {saving:.0%}")
    n_escalated = sum(1 for d in decisions if d.escalated)
    print(
        f"routed (calibrated band {band.low:.2f}/{band.high:.2f}): "
        f"F1 {routed_f1:5.1f}  cost ${routed_cost:.4f}  "
        f"escalated {n_escalated / len(decisions):.0%}"
    )
    print("(serve this ladder online: MatchService(matcher, router=...) — docs/ROUTING.md)")


if __name__ == "__main__":
    main()

"""Deployment cost planning for a cloud EM service (Sections 4.2 & 5).

A practitioner has to deduplicate 10 million record pairs per day.  This
example reproduces the paper's cost methodology: simulate throughput on
A100s, price the cheapest deployment per matcher, and print what the
daily bill would be — the analysis behind the paper's recommendation of
AnyMatch[LLaMA3.2] over MatchGPT[GPT-4].

Run:  python examples/cost_planning.py
"""

from __future__ import annotations

from repro.cost import DeploymentCostModel
from repro.llm import count_tokens
from repro.study import table5, table6

#: A serialised candidate pair is roughly this long (measured on DBGO).
_EXAMPLE_PAIR = (
    "val efficient query optimization in data streams val j. smith, w. zhang "
    "val proceedings of the vldb endowment val 2004 [SEP] val efficient query "
    "optimization in data streams val james smith, wei zhang val vldb val 2004"
)

PAIRS_PER_DAY = 10_000_000


def main() -> None:
    print("Throughput on a 4xA100-40GB machine (Table 5):\n")
    print(table5.run().render())

    print("\nCheapest deployment per matcher (Table 6):\n")
    cost_table = table6.run()
    print(cost_table.render())

    tokens_per_pair = count_tokens(_EXAMPLE_PAIR)
    daily_tokens = PAIRS_PER_DAY * tokens_per_pair
    print(f"\nWorkload: {PAIRS_PER_DAY:,} pairs/day x {tokens_per_pair} tokens "
          f"= {daily_tokens / 1e9:.1f}B tokens/day\n")

    model = DeploymentCostModel()
    for method, card in (
        ("Ditto", "bert"),
        ("AnyMatch[LLaMA3.2]", "llama3.2-1b"),
        ("MatchGPT[GPT-4o-Mini]", "gpt-4o-mini"),
        ("MatchGPT[GPT-4]", "gpt-4"),
    ):
        dollars = model.price_run(card, daily_tokens)
        print(f"  {method:24} ${dollars:>12,.2f} per day")

    print("\nThe three-orders-of-magnitude spread is why the paper recommends")
    print("fine-tuned small models for scalable cloud deployments (Section 5).")


if __name__ == "__main__":
    main()
